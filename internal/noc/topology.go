// Package noc implements the Centurion network-on-chip fabric: a 2-D mesh of
// five-port wormhole routers with per-link flit serialisation, a Router
// Configuration Access Port (RCAP) for remote reconfiguration, a basic
// deadlock-recovery mechanism, and the monitor/knob taps that the embedded
// intelligence modules (package aim) observe and actuate.
//
// The fabric is a deterministic tick-level model: Network.Tick advances every
// router by one cycle. It reproduces the observable behaviour the paper's
// runtime-management models depend on — which task IDs flow through each
// router, which packets are accepted locally, and how congestion and faults
// reshape that traffic — without modelling FPGA electrical detail.
package noc

import "fmt"

// NodeID identifies a node (router + processing element) in the mesh,
// computed as y*W + x.
type NodeID int

// Invalid is the NodeID of "no node".
const Invalid NodeID = -1

// Coord is a mesh coordinate. X grows eastward, Y grows southward.
type Coord struct{ X, Y int }

// Manhattan returns the Manhattan distance to another coordinate.
func (c Coord) Manhattan(o Coord) int {
	dx, dy := c.X-o.X, c.Y-o.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Port is one of a router's five channels. The four cardinal ports connect
// to mesh neighbours; Local connects to the node's processing element.
// (The RCAP configuration channel is modelled as config-kind packets
// delivered through the regular ports, as on the real router where RCAP
// traffic shares the NoC.)
type Port int

// Router ports in round-robin service order.
const (
	North Port = iota
	East
	South
	West
	Local
	NumPorts // number of ports; not a valid port value

	// PortInvalid marks "no route".
	PortInvalid Port = -1
)

// String names the port for traces.
func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	case PortInvalid:
		return "-"
	}
	return fmt.Sprintf("Port(%d)", int(p))
}

// Opposite returns the port a packet leaving via p arrives on at the
// neighbouring router.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return p
}

// Topology describes a W×H mesh.
type Topology struct {
	W, H int
	// coords memoizes NodeID→Coord so the routing hot path (XY next hops,
	// Manhattan scans in the task directory) avoids a div/mod pair per
	// lookup. Built once by NewTopology; the slice is shared read-only by
	// every copy of the value.
	coords []Coord
}

// NewTopology returns a mesh topology. It panics on non-positive dimensions.
func NewTopology(w, h int) Topology {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: invalid topology %dx%d", w, h))
	}
	t := Topology{W: w, H: h}
	t.coords = make([]Coord, w*h)
	for id := range t.coords {
		t.coords[id] = Coord{X: id % w, Y: id / w}
	}
	return t
}

// Nodes returns the node count W*H.
func (t Topology) Nodes() int { return t.W * t.H }

// ID maps a coordinate to its NodeID. It panics when out of bounds.
func (t Topology) ID(c Coord) NodeID {
	if !t.InBounds(c) {
		panic(fmt.Sprintf("noc: coordinate %v outside %dx%d mesh", c, t.W, t.H))
	}
	return NodeID(c.Y*t.W + c.X)
}

// Coord maps a NodeID back to its coordinate.
func (t Topology) Coord(id NodeID) Coord {
	if id < 0 || int(id) >= t.Nodes() {
		panic(fmt.Sprintf("noc: node %d outside %dx%d mesh", id, t.W, t.H))
	}
	if t.coords != nil {
		return t.coords[id]
	}
	// Zero-value topologies (tests constructing Topology{W, H} directly)
	// fall back to the arithmetic form.
	return Coord{X: int(id) % t.W, Y: int(id) / t.W}
}

// InBounds reports whether the coordinate lies inside the mesh.
func (t Topology) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < t.W && c.Y >= 0 && c.Y < t.H
}

// Neighbor returns the node adjacent to id through the given cardinal port.
// ok is false at mesh edges or for the Local port.
func (t Topology) Neighbor(id NodeID, p Port) (NodeID, bool) {
	c := t.Coord(id)
	switch p {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return Invalid, false
	}
	if !t.InBounds(c) {
		return Invalid, false
	}
	return t.ID(c), true
}

// Distance returns the Manhattan distance between two nodes.
func (t Topology) Distance(a, b NodeID) int {
	return t.Coord(a).Manhattan(t.Coord(b))
}

// String renders the topology dimensions.
func (t Topology) String() string { return fmt.Sprintf("%dx%d mesh", t.W, t.H) }
