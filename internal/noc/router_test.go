package noc

import (
	"testing"

	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// collectSink records delivered packets and can simulate a full queue.
type collectSink struct {
	got  []*Packet
	full bool
}

func (s *collectSink) Accept(p *Packet, now sim.Tick) bool {
	if s.full {
		return false
	}
	s.got = append(s.got, p)
	return true
}

func testNet(w, h int, mode RoutingMode) *Network {
	cfg := DefaultConfig()
	cfg.Mode = mode
	return NewNetwork(NewTopology(w, h), cfg)
}

// run advances the network n ticks starting from *clk, updating the clock.
func run(net *Network, clk *sim.Clock, n int) {
	for i := 0; i < n; i++ {
		net.Tick(clk.Now())
		clk.Step()
	}
}

func dataPacket(id uint64, src, dst NodeID, task taskgraph.TaskID, flits int) *Packet {
	return &Packet{ID: id, Kind: Data, Src: src, Dst: dst, Task: task, Flits: flits}
}

func TestPacketDeliveryAcrossMesh(t *testing.T) {
	net := testNet(8, 8, RouteAuto)
	topo := net.Topo
	sink := &collectSink{}
	src := topo.ID(Coord{0, 0})
	dst := topo.ID(Coord{7, 7})
	net.Router(dst).SetSink(sink)

	p := dataPacket(1, src, dst, 2, 4)
	var clk sim.Clock
	if !net.Inject(src, p, clk.Now()) {
		t.Fatal("Inject failed on empty fabric")
	}
	run(net, &clk, 200)

	if len(sink.got) != 1 || sink.got[0].ID != 1 {
		t.Fatalf("delivered %d packets, want packet #1", len(sink.got))
	}
	if p.Hops != topo.Distance(src, dst) {
		t.Errorf("hops = %d, want Manhattan %d", p.Hops, topo.Distance(src, dst))
	}
	st := net.Stats()
	if st.Injected != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if net.InFlight() != 0 {
		t.Errorf("InFlight = %d after delivery", net.InFlight())
	}
}

func TestWormholeSerialisation(t *testing.T) {
	// Two packets from the same source to the same destination share every
	// link; with F flits each, the second must arrive ~F ticks after the
	// first rather than interleaving.
	net := testNet(8, 1, RouteAuto)
	topo := net.Topo
	sink := &collectSink{}
	src, dst := topo.ID(Coord{0, 0}), topo.ID(Coord{7, 0})
	net.Router(dst).SetSink(sink)

	var clk sim.Clock
	const flits = 4
	var arrive []sim.Tick
	wrapped := &hookSink{inner: sink, onAccept: func(p *Packet, now sim.Tick) { arrive = append(arrive, now) }}
	net.Router(dst).SetSink(wrapped)

	net.Inject(src, dataPacket(1, src, dst, 1, flits), clk.Now())
	net.Inject(src, dataPacket(2, src, dst, 1, flits), clk.Now())
	run(net, &clk, 300)

	if len(arrive) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(arrive))
	}
	gap := arrive[1] - arrive[0]
	if gap < flits {
		t.Errorf("second packet arrived %d ticks after first; want >= %d (link serialisation)", gap, flits)
	}
}

type hookSink struct {
	inner    Sink
	onAccept func(*Packet, sim.Tick)
}

func (h *hookSink) Accept(p *Packet, now sim.Tick) bool {
	if h.inner.Accept(p, now) {
		if h.onAccept != nil {
			h.onAccept(p, now)
		}
		return true
	}
	return false
}

func TestInjectBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferFlits = 8
	net := NewNetwork(NewTopology(4, 1), cfg)
	src := net.Topo.ID(Coord{0, 0})
	// Fill the local channel: 8 flit capacity, 4-flit packets -> 2 fit.
	var clk sim.Clock
	if !net.Inject(src, dataPacket(1, src, 3, 1, 4), clk.Now()) {
		t.Fatal("first inject failed")
	}
	if !net.Inject(src, dataPacket(2, src, 3, 1, 4), clk.Now()) {
		t.Fatal("second inject failed")
	}
	if net.Inject(src, dataPacket(3, src, 3, 1, 4), clk.Now()) {
		t.Error("third inject succeeded past buffer capacity")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Two flows contending for the same output link must both make progress.
	net := testNet(3, 3, RouteAuto)
	topo := net.Topo
	dst := topo.ID(Coord{2, 1})
	sink := &collectSink{}
	net.Router(dst).SetSink(sink)
	srcA := topo.ID(Coord{0, 1}) // west flow through (1,1)
	srcB := topo.ID(Coord{1, 1}) // local flow at (1,1)

	var clk sim.Clock
	id := uint64(1)
	for i := 0; i < 10; i++ {
		net.Inject(srcA, dataPacket(id, srcA, dst, 1, 2), clk.Now())
		id++
		net.Inject(srcB, dataPacket(id, srcB, dst, 2, 2), clk.Now())
		id++
		run(net, &clk, 4)
	}
	run(net, &clk, 300)
	var a, b int
	for _, p := range sink.got {
		if p.Task == 1 {
			a++
		} else {
			b++
		}
	}
	if a == 0 || b == 0 {
		t.Fatalf("starvation: flow A delivered %d, flow B %d", a, b)
	}
}

func TestDeliveryBlockedBySinkThenRecovered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeadlockLimit = 10
	cfg.RequeueLimit = 1
	net := NewNetwork(NewTopology(2, 1), cfg)
	src, dst := NodeID(0), NodeID(1)
	sink := &collectSink{full: true}
	net.Router(dst).SetSink(sink)

	var recovered []*Packet
	net.RecoveryHandler = func(at NodeID, p *Packet, now sim.Tick) bool {
		recovered = append(recovered, p)
		return true
	}
	var clk sim.Clock
	net.Inject(src, dataPacket(1, src, dst, 1, 2), clk.Now())
	run(net, &clk, 80)
	if len(recovered) != 1 {
		t.Fatalf("recovered %d packets, want 1 (sink persistently full)", len(recovered))
	}
	if got := net.Stats().Rescued; got != 1 {
		t.Errorf("Rescued = %d, want 1", got)
	}
}

func TestDeadlockRecoveryOnBlockedLink(t *testing.T) {
	// A persistently full sink at dst backs the link up; the packet queued
	// behind it at the intermediate router must eventually be ejected.
	cfg := DefaultConfig()
	cfg.DeadlockLimit = 15
	cfg.RequeueLimit = 2
	cfg.BufferFlits = 4 // single 4-flit packet per channel
	net := NewNetwork(NewTopology(3, 1), cfg)
	sinkFull := &collectSink{full: true}
	net.Router(2).SetSink(sinkFull)
	dropped := 0
	net.DropHandler = func(at NodeID, p *Packet, reason DropReason) { dropped++ }

	var clk sim.Clock
	net.Inject(0, dataPacket(1, 0, 2, 1, 4), clk.Now())
	net.Inject(0, dataPacket(2, 0, 2, 1, 4), clk.Now())
	run(net, &clk, 200)

	if dropped == 0 {
		t.Error("no packets dropped despite a permanently blocked path")
	}
	rec := net.Router(2).Stats.Recovered + net.Router(1).Stats.Recovered + net.Router(0).Stats.Recovered
	if rec == 0 {
		t.Error("no router performed deadlock recovery")
	}
}

func TestConfigPacketAppliesToRouter(t *testing.T) {
	net := testNet(4, 1, RouteAuto)
	var clk sim.Clock
	cfgPkt := &Packet{ID: 1, Kind: Config, Src: 0, Dst: 3, Flits: 1, Op: OpSetDeadlockLimit, Arg: 77}
	net.Inject(0, cfgPkt, clk.Now())
	run(net, &clk, 50)
	if got := net.Router(3).deadlockLimit; got != 77 {
		t.Errorf("deadlockLimit = %d, want 77", got)
	}
	if net.Stats().ConfigOps != 1 {
		t.Errorf("ConfigOps = %d, want 1", net.Stats().ConfigOps)
	}
}

func TestConfigPortDisableEnable(t *testing.T) {
	net := testNet(4, 1, RouteAuto)
	var clk sim.Clock
	// Disable router 1's East output; traffic 0->3 must block and recover.
	net.Inject(0, &Packet{ID: 1, Kind: Config, Src: 0, Dst: 1, Flits: 1, Op: OpDisablePort, Arg: int(East)}, clk.Now())
	run(net, &clk, 20)
	if !net.Router(1).PortDisabled(East) {
		t.Fatal("East port not disabled")
	}
	net.Inject(0, &Packet{ID: 2, Kind: Config, Src: 0, Dst: 1, Flits: 1, Op: OpEnablePort, Arg: int(East)}, clk.Now())
	run(net, &clk, 20)
	if net.Router(1).PortDisabled(East) {
		t.Fatal("East port not re-enabled")
	}
}

func TestConfigForwardedToConfigSink(t *testing.T) {
	net := testNet(2, 1, RouteAuto)
	var gotOp ConfigOp
	var gotArg, gotArg2 int
	net.Router(1).SetConfigSink(configSinkFunc(func(dst NodeID, op ConfigOp, a, b int, now sim.Tick) {
		gotOp, gotArg, gotArg2 = op, a, b
	}))
	var clk sim.Clock
	net.Inject(0, &Packet{ID: 1, Kind: Config, Src: 0, Dst: 1, Flits: 1, Op: OpAIMParam, Arg: 3, Arg2: 42}, clk.Now())
	run(net, &clk, 20)
	if gotOp != OpAIMParam || gotArg != 3 || gotArg2 != 42 {
		t.Errorf("config sink got op=%d arg=%d arg2=%d", gotOp, gotArg, gotArg2)
	}
}

type configSinkFunc func(NodeID, ConfigOp, int, int, sim.Tick)

func (f configSinkFunc) ApplyConfig(dst NodeID, op ConfigOp, a, b int, now sim.Tick) {
	f(dst, op, a, b, now)
}

func TestMonitorImpulses(t *testing.T) {
	net := testNet(4, 1, RouteAuto)
	sink := &collectSink{}
	net.Router(3).SetSink(sink)

	var routedAt1 []taskgraph.TaskID
	var internalAt3 []taskgraph.TaskID
	net.Router(1).Monitors.RoutedTask = func(task taskgraph.TaskID, now sim.Tick) {
		routedAt1 = append(routedAt1, task)
	}
	net.Router(3).Monitors.InternalDelivery = func(task taskgraph.TaskID, now sim.Tick) {
		internalAt3 = append(internalAt3, task)
	}
	var clk sim.Clock
	net.Inject(0, dataPacket(1, 0, 3, 2, 2), clk.Now())
	run(net, &clk, 50)
	if len(routedAt1) != 1 || routedAt1[0] != 2 {
		t.Errorf("RoutedTask impulses at router 1 = %v", routedAt1)
	}
	if len(internalAt3) != 1 || internalAt3[0] != 2 {
		t.Errorf("InternalDelivery impulses at router 3 = %v", internalAt3)
	}
}

func TestDeadlineLapseMonitor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeadlockLimit = 0 // keep the packet stuck without recovery
	net := NewNetwork(NewTopology(2, 1), cfg)
	sink := &collectSink{full: true}
	net.Router(1).SetSink(sink)
	lapses := 0
	net.Router(1).Monitors.DeadlineLapse = func(task taskgraph.TaskID, now sim.Tick) { lapses++ }
	var clk sim.Clock
	p := dataPacket(1, 0, 1, 1, 2)
	p.Deadline = 10
	net.Inject(0, p, clk.Now())
	run(net, &clk, 60)
	if lapses != 1 {
		t.Errorf("DeadlineLapse fired %d times, want exactly 1 (impulse is edge-triggered)", lapses)
	}
}

func TestRouterFailureDropsBufferedPackets(t *testing.T) {
	net := testNet(4, 1, RouteAuto)
	var clk sim.Clock
	var drops []DropReason
	net.DropHandler = func(at NodeID, p *Packet, reason DropReason) { drops = append(drops, reason) }
	net.Inject(1, dataPacket(1, 1, 3, 1, 2), clk.Now())
	net.Fail(1, clk.Now())
	if len(drops) != 1 || drops[0] != DropRouterFailed {
		t.Fatalf("drops = %v, want one DropRouterFailed", drops)
	}
	if net.Alive(1) {
		t.Error("router 1 still alive after Fail")
	}
	if net.FaultyCount() != 1 {
		t.Errorf("FaultyCount = %d", net.FaultyCount())
	}
	// Idempotent.
	net.Fail(1, clk.Now())
	if net.FaultyCount() != 1 {
		t.Errorf("FaultyCount after double Fail = %d", net.FaultyCount())
	}
}

func TestRouteAroundFailedRouter(t *testing.T) {
	net := testNet(4, 4, RouteAuto)
	topo := net.Topo
	sink := &collectSink{}
	src := topo.ID(Coord{0, 0})
	dst := topo.ID(Coord{3, 0})
	net.Router(dst).SetSink(sink)
	var clk sim.Clock
	// Kill the direct XY path.
	net.Fail(topo.ID(Coord{1, 0}), clk.Now())
	net.Fail(topo.ID(Coord{2, 0}), clk.Now())
	p := dataPacket(1, src, dst, 1, 2)
	net.Inject(src, p, clk.Now())
	run(net, &clk, 200)
	if len(sink.got) != 1 {
		t.Fatalf("packet not delivered around faults (delivered %d)", len(sink.got))
	}
	if p.Hops <= 3 {
		t.Errorf("hops = %d; a detour should exceed the direct distance 3", p.Hops)
	}
}

func TestUnreachableDestinationRecovered(t *testing.T) {
	net := testNet(4, 1, RouteAuto)
	var clk sim.Clock
	var recoveredIDs []uint64
	net.RecoveryHandler = func(at NodeID, p *Packet, now sim.Tick) bool {
		recoveredIDs = append(recoveredIDs, p.ID)
		return true
	}
	// Partition: kill node 2; node 3 becomes unreachable from 0 on a 1-row mesh.
	net.Fail(2, clk.Now())
	net.Inject(0, dataPacket(9, 0, 3, 1, 2), clk.Now())
	run(net, &clk, 50)
	if len(recoveredIDs) != 1 || recoveredIDs[0] != 9 {
		t.Errorf("recovery handler saw %v, want [9]", recoveredIDs)
	}
	if net.Reachable(0, 3) {
		t.Error("Reachable(0,3) across a partition")
	}
	if !net.Reachable(0, 1) {
		t.Error("Reachable(0,1) within partition reported false")
	}
}

func TestQueuedHeadTask(t *testing.T) {
	net := testNet(2, 1, RouteAuto)
	var clk sim.Clock
	r := net.Router(0)
	if _, ok := r.QueuedHeadTask(clk.Now()); ok {
		t.Fatal("empty router reported a queued task")
	}
	p := dataPacket(1, 0, 1, 7, 2)
	p.Created = clk.Now()
	net.Inject(0, p, clk.Now())
	task, ok := r.QueuedHeadTask(clk.Now())
	if !ok || task != 7 {
		t.Errorf("QueuedHeadTask = %d,%v, want 7,true", task, ok)
	}
}

func TestFaultyRouterRejectsInjection(t *testing.T) {
	net := testNet(2, 1, RouteAuto)
	var clk sim.Clock
	net.Fail(0, clk.Now())
	if net.Inject(0, dataPacket(1, 0, 1, 1, 2), clk.Now()) {
		t.Error("inject into failed router succeeded")
	}
}

func TestPacketLapsedOnce(t *testing.T) {
	p := dataPacket(1, 0, 1, 1, 2)
	p.Deadline = 5
	if p.Lapsed(3) {
		t.Error("lapsed before deadline")
	}
	if !p.Lapsed(6) {
		t.Error("not lapsed after deadline")
	}
	if p.Lapsed(7) {
		t.Error("lapse fired twice")
	}
	q := dataPacket(2, 0, 1, 1, 2) // no deadline
	if q.Lapsed(1000) {
		t.Error("packet without deadline lapsed")
	}
}

func TestNoSinkDrop(t *testing.T) {
	net := testNet(2, 1, RouteAuto)
	var clk sim.Clock
	var reasons []DropReason
	net.DropHandler = func(at NodeID, p *Packet, reason DropReason) { reasons = append(reasons, reason) }
	net.Inject(0, dataPacket(1, 0, 1, 1, 2), clk.Now())
	run(net, &clk, 30)
	if len(reasons) != 1 || reasons[0] != DropNoSink {
		t.Errorf("reasons = %v, want [no-sink]", reasons)
	}
}

// Packet conservation: injected = delivered + dropped + rescued-in-flight
// over a randomised traffic pattern on a healthy mesh with ample time.
func TestPacketConservation(t *testing.T) {
	net := testNet(8, 8, RouteAuto)
	topo := net.Topo
	sink := &collectSink{}
	for id := NodeID(0); int(id) < topo.Nodes(); id++ {
		net.Router(id).SetSink(sink)
	}
	rng := newTestRNG(12345)
	var clk sim.Clock
	injected := 0
	for i := 0; i < 500; i++ {
		src := NodeID(rng.Intn(topo.Nodes()))
		dst := NodeID(rng.Intn(topo.Nodes()))
		if src == dst {
			continue
		}
		if net.Inject(src, dataPacket(uint64(i), src, dst, 1, 2), clk.Now()) {
			injected++
		}
		if i%4 == 0 {
			run(net, &clk, 1)
		}
	}
	run(net, &clk, 2000)
	st := net.Stats()
	if int(st.Injected) != injected {
		t.Errorf("Injected = %d, want %d", st.Injected, injected)
	}
	if got := int(st.Delivered + st.Dropped); got != injected {
		t.Errorf("delivered+dropped = %d, want %d (in flight %d)", got, injected, net.InFlight())
	}
	if st.Dropped != 0 {
		t.Errorf("dropped %d packets on a healthy uncongested mesh", st.Dropped)
	}
}
