package noc

import "centurion/internal/sim"

// buffer is a router input FIFO with flit-granular capacity, matching the
// wormhole router's small per-channel buffers (the paper's router trades
// buffer space for deadlock-recovery logic).
type buffer struct {
	pkts     []*Packet
	head     int
	capFlits int
	usedFlit int
	// readyAt[i] aligned with pkts: tick at which the packet has fully
	// arrived (tail flit received) and may be forwarded.
	readyAt []sim.Tick
}

func newBuffer(capFlits int) *buffer {
	return &buffer{capFlits: capFlits}
}

// Len returns the number of queued packets.
func (b *buffer) Len() int { return len(b.pkts) - b.head }

// FreeFlits returns the remaining flit capacity.
func (b *buffer) FreeFlits() int { return b.capFlits - b.usedFlit }

// CanAccept reports whether a packet of the given flit length fits.
func (b *buffer) CanAccept(flits int) bool { return b.FreeFlits() >= flits }

// Push enqueues a packet whose tail flit arrives at readyAt. It returns
// false (and leaves the buffer unchanged) when capacity is insufficient.
func (b *buffer) Push(p *Packet, readyAt sim.Tick) bool {
	if !b.CanAccept(p.Flits) {
		return false
	}
	b.pkts = append(b.pkts, p)
	b.readyAt = append(b.readyAt, readyAt)
	b.usedFlit += p.Flits
	return true
}

// Head returns the oldest packet and its ready tick without removing it,
// or nil when empty.
func (b *buffer) Head() (*Packet, sim.Tick) {
	if h := b.head; h < len(b.pkts) && h < len(b.readyAt) {
		return b.pkts[h], b.readyAt[h]
	}
	return nil, 0
}

// Pop removes and returns the oldest packet. It returns nil when empty.
func (b *buffer) Pop() *Packet {
	if b.Len() == 0 {
		return nil
	}
	p := b.pkts[b.head]
	b.pkts[b.head] = nil // allow GC
	b.head++
	b.usedFlit -= p.Flits
	// Compact once the dead prefix dominates, to keep memory bounded.
	if b.head > 32 && b.head*2 >= len(b.pkts) {
		n := copy(b.pkts, b.pkts[b.head:])
		copy(b.readyAt, b.readyAt[b.head:])
		b.pkts = b.pkts[:n]
		b.readyAt = b.readyAt[:n]
		b.head = 0
	}
	return p
}

// Drain removes and returns all queued packets (used when a router fails:
// its buffered traffic is lost and accounted as dropped).
func (b *buffer) Drain() []*Packet {
	var out []*Packet
	for b.Len() > 0 {
		out = append(out, b.Pop())
	}
	return out
}

// reset empties the buffer in place, retaining the slices' capacity, and
// hands every queued packet to release (when non-nil) for recycling.
func (b *buffer) reset(release func(*Packet)) {
	for i := b.head; i < len(b.pkts); i++ {
		if release != nil {
			release(b.pkts[i])
		}
		b.pkts[i] = nil
	}
	b.pkts = b.pkts[:0]
	b.readyAt = b.readyAt[:0]
	b.head = 0
	b.usedFlit = 0
}
