package noc

import "centurion/internal/sim"

// The router input FIFOs of one network are fixed-capacity rings over a
// single shared backing slice (DESIGN.md §11): port p of router r owns the
// slot range [(r*NumPorts+p)*spp, +spp), so the whole fabric's buffered
// traffic lives in one contiguous allocation and a head peek is a single
// indexed load instead of a pointer chase through []*Packet.
//
// Capacity is flit-granular exactly like the wormhole router's small
// per-channel buffers (capFlits per port), and because every packet occupies
// at least one flit of accounting, a ring of capFlits slots can never
// overflow on packet count. spp is capFlits rounded up to a power of two so
// the wrap is a mask.

// ringSlot caches the routing-hot view of one buffered packet: everything
// the per-tick kernel needs to decide a head's fate (in transit? lapsed?
// which output port? how long does the link stay busy?) without touching the
// Packet itself. The arena handle is dereferenced only when the packet
// leaves the fabric (delivery, absorption, recovery, drop) or carries rare
// state (a pending requeue count, a firing deadline lapse).
//
// The hop counter travels in the slot — a forward is a slot copy, so the
// increment is free — and is written back to the packet at every fabric
// exit. dst is 32 bits (mega fabrics reach 2^20 nodes); task/flits are
// narrowed to 16 bits (flit lengths clamp, which only matters for absurd
// >32767-flit packets) — together that keeps the slot at 32 bytes: two per
// cache line.
type ringSlot struct {
	// ready is the tick the packet's tail flit has fully arrived; before it
	// the head may not be forwarded (wormhole serialisation).
	ready sim.Tick
	// deadline mirrors Packet.Deadline (0 = none).
	deadline sim.Tick
	id       PacketID
	dst      int32
	task     int16
	flits    int16
	// hops is the in-fabric hop counter (mirrors Packet.Hops, which it
	// overwrites on exit; wraps with the packet's own counter far beyond any
	// realistic path length).
	hops  uint16
	kind  Kind
	flags uint8
}

const (
	// slotLapsed mirrors Packet.lapsedSeen, so the once-per-lifetime
	// deadline check never dereferences the packet.
	slotLapsed uint8 = 1 << 0
	// slotRequeued marks a packet with a non-zero deadlock-recovery requeue
	// count: the packet field stays authoritative (exact int semantics) and
	// the flag lets the forward path skip the reset for the common clean
	// packet.
	slotRequeued uint8 = 1 << 1
)

// ring is the per-port FIFO state. head is an absolute index into the
// shared slot slice (so the hot head peek is one load); the port's base and
// wrap mask are recomputed only on push/pop.
type ring struct {
	head uint32 // absolute slot index of the oldest entry
	n    uint32 // entries queued
	used uint32 // flits of capacity consumed
}

// ringFlits is the flit accounting of one slot: packets shorter than one
// flit still occupy a slot, so they cost one flit of capacity (the same
// clamp the link serialiser applies to their transfer time).
func ringFlits(flits int16) uint32 {
	if flits < 1 {
		return 1
	}
	return uint32(flits)
}

// slotsPerPort returns the ring length for the given flit capacity (next
// power of two, so wrap-around is a mask).
func slotsPerPort(capFlits int) int {
	spp := 1
	for spp < capFlits {
		spp <<= 1
	}
	return spp
}
