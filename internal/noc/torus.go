package noc

import "fmt"

// Torus is a W×H mesh with wrap-around links: every row and column closes
// into a ring, halving the worst-case hop distance and removing the edge
// asymmetry of the mesh. Routing is minimal dimension-ordered: correct X
// around the shorter side of its ring first, then Y, with ties broken
// toward East/South so routes are deterministic. Following hops strictly
// decreases the ring distance, so per-destination next-hop graphs are
// cycle-free (the deadlock-freedom sense the route-table property tests
// assert; head-of-line cycles across destinations are handled by the
// router's recovery mechanism, as on the mesh).
type Torus struct{ grid }

// NewTorus returns a w×h torus. It panics when either dimension is below 2
// (a 1-wide ring would wrap a router onto itself).
func NewTorus(w, h int) Torus {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("noc: torus needs both dimensions >= 2, got %dx%d", w, h))
	}
	return Torus{newGrid(w, h)}
}

// Kind implements Topology.
func (Torus) Kind() string { return KindTorus }

// Neighbor implements Topology: grid adjacency with wrap-around at the
// edges.
func (t Torus) Neighbor(id NodeID, p Port) (NodeID, bool) {
	c := t.Coord(id)
	switch p {
	case North:
		c.Y = (c.Y - 1 + t.h) % t.h
	case South:
		c.Y = (c.Y + 1) % t.h
	case East:
		c.X = (c.X + 1) % t.w
	case West:
		c.X = (c.X - 1 + t.w) % t.w
	default:
		return Invalid, false
	}
	return t.ID(c), true
}

// Lateral implements Topology: a torus is physically realised as a folded
// grid, so the wrap links are real die adjacencies too. On a dimension-2
// ring the two directions reach the same node; only one port reports the
// pair (East/South) so thermal conduction and neighbour signals count each
// physical adjacency once — the fabric's Neighbor keeps both parallel
// links.
func (t Torus) Lateral(id NodeID, p Port) (NodeID, bool) {
	if (t.w == 2 && p == West) || (t.h == 2 && p == North) {
		return Invalid, false
	}
	return t.Neighbor(id, p)
}

// ringDist returns the distance between two positions on an n-ring.
func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := n - d; w < d {
		return w
	}
	return d
}

// Distance implements Topology: the sum of per-dimension ring distances.
func (t Torus) Distance(a, b NodeID) int {
	ac, bc := t.Coord(a), t.Coord(b)
	return ringDist(ac.X, bc.X, t.w) + ringDist(ac.Y, bc.Y, t.h)
}

// RouterOf implements Topology: every node owns its router.
func (Torus) RouterOf(id NodeID) NodeID { return id }

// BaseNextHop implements Topology: minimal dimension-ordered routing. X is
// corrected first around the shorter way of its ring (East on a tie), then
// Y (South on a tie).
func (t Torus) BaseNextHop(from, dst NodeID) Port {
	fc, dc := t.Coord(from), t.Coord(dst)
	if fc.X != dc.X {
		east := ((dc.X - fc.X) + t.w) % t.w // steps going East
		if east <= t.w-east {
			return East
		}
		return West
	}
	if fc.Y != dc.Y {
		south := ((dc.Y - fc.Y) + t.h) % t.h // steps going South
		if south <= t.h-south {
			return South
		}
		return North
	}
	return Local
}

// String renders the topology dimensions.
func (t Torus) String() string { return fmt.Sprintf("%dx%d torus", t.w, t.h) }
