package noc

import (
	"testing"

	"centurion/internal/sim"
)

func TestPacketPoolRecyclesZeroed(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	// Dirty every once-per-lifetime latch plus payload fields.
	p.ID = 42
	p.Kind = Config
	p.Hops = 7
	p.Retargets = 3
	p.requeues = 5
	p.Deadline = 1
	p.lapsedSeen = true
	p.Op = OpDisablePort
	pp.Put(p)

	q := pp.Get()
	if q != p {
		t.Fatalf("free list did not recycle the packet")
	}
	if want := (Packet{h: q.h}); *q != want {
		t.Errorf("recycled packet not zeroed: %+v", *q)
	}
	if !q.h.Valid() {
		t.Errorf("recycled packet carries no valid handle: %v", q.h)
	}
	if q.Lapsed(sim.Tick(10)) {
		t.Error("zeroed packet with no deadline reported a lapse")
	}

	st := pp.Stats()
	if st.Allocated != 1 || st.Recycled != 1 || st.Live != 1 || st.FreeListLen != 0 {
		t.Errorf("stats = %+v, want 1 allocated, 1 recycled, 1 live, empty free list", st)
	}
}

func TestPacketPoolDoubleRecyclePanics(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	pp.Put(p)
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic")
		}
	}()
	pp.Put(p)
}

func TestPacketPoolAdoptsForeignPackets(t *testing.T) {
	// Packets created outside the pool (tests, benches) may still be dropped
	// into a pooled fabric; Put adopts them.
	var pp PacketPool
	p := &Packet{ID: 9}
	pp.Put(p)
	if got := pp.Get(); got != p || got.ID != 0 {
		t.Errorf("foreign packet not adopted and zeroed: %+v", got)
	}
}
