// Package wire provides the little-endian append/read primitives shared by
// the checkpoint encoders (DESIGN.md §15). Every multi-byte field in a
// checkpoint file goes through these helpers so the on-disk layout is fixed
// regardless of host byte order, and the Reader accumulates a single error
// instead of forcing a check after every field.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShort reports a read past the end of the buffer — a truncated or
// misframed payload.
var ErrShort = errors.New("wire: truncated payload")

func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

func AppendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }

func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendString appends a u32 length prefix followed by the raw bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// Reader consumes a buffer written with the Append helpers. After the first
// short read every subsequent call returns zero values; check Err once at
// the end of a decode instead of after each field.
type Reader struct {
	b   []byte
	err error
}

func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left unread.
func (r *Reader) Remaining() int { return len(r.b) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrShort
		r.b = nil
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *Reader) U8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *Reader) U16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *Reader) U32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *Reader) U64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a u32-length-prefixed string written by AppendString.
func (r *Reader) String() string {
	n := r.Count(1)
	if b := r.take(n); b != nil {
		return string(b)
	}
	return ""
}

// Count reads a u32 element count and validates it against the bytes left
// in the buffer (minSize bytes per element), so a corrupt length cannot
// drive a multi-gigabyte allocation before the mismatch is noticed.
func (r *Reader) Count(minSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if minSize > 0 && n > len(r.b)/minSize {
		r.err = ErrShort
		r.b = nil
		return 0
	}
	return n
}
