package sim

// RNG is a small, fast, deterministic random number generator
// (SplitMix64-based) used everywhere the simulator needs randomness.
//
// It is deliberately independent of math/rand so that results are bit-stable
// across Go releases: the experiment tables in EXPERIMENTS.md are
// reproducible from a seed alone.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that small seeds (0, 1, 2...) still diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Reseed rewinds the generator to the exact state NewRNG(seed) produces, so
// a reused generator replays the same stream a fresh one would.
func (r *RNG) Reseed(seed uint64) {
	r.state = seed
	r.Uint64()
	r.Uint64()
}

// Uint64 returns the next 64 random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire-style rejection-free bound is unnecessary here; modulo bias is
	// negligible for the small n used by the simulator, but we still mask it
	// away with rejection sampling to keep property tests honest.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Pick returns a uniformly random element index of a slice of length n,
// or -1 when n == 0.
func (r *RNG) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return r.Intn(n)
}

// Fork derives an independent generator from this one. Streams drawn from
// the parent after forking do not correlate with the child's stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}
