package sim

import "testing"

func TestActiveSetAddRemove(t *testing.T) {
	s := NewActiveSet(130)
	for _, id := range []int{0, 63, 64, 129} {
		if s.Contains(id) {
			t.Fatalf("fresh set contains %d", id)
		}
		s.Add(id)
		s.Add(id) // idempotent
		if !s.Contains(id) {
			t.Fatalf("Add(%d) did not mark", id)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	s.Remove(63)
	s.Remove(63) // idempotent
	if s.Contains(63) || s.Len() != 3 {
		t.Fatalf("Remove(63) failed: contains=%v len=%d", s.Contains(63), s.Len())
	}
}

func TestActiveSetSweepOrderAndRetire(t *testing.T) {
	s := NewActiveSet(200)
	for _, id := range []int{5, 70, 3, 199} {
		s.Add(id)
	}
	var visited []int
	s.Sweep(func(id int) bool {
		visited = append(visited, id)
		return id == 70 // retire everything except 70
	})
	want := []int{3, 5, 70, 199}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want ascending %v", visited, want)
		}
	}
	if s.Len() != 1 || !s.Contains(70) {
		t.Fatalf("after sweep: len=%d contains(70)=%v", s.Len(), s.Contains(70))
	}
}

// Members marked during a sweep are visited in the same sweep when above the
// cursor and deferred to the next sweep otherwise — the property that makes
// the active-set sweep order-equivalent to a dense ascending scan.
func TestActiveSetMidSweepMarks(t *testing.T) {
	s := NewActiveSet(128)
	s.Add(10)
	var visited []int
	s.Sweep(func(id int) bool {
		visited = append(visited, id)
		if id == 10 {
			s.Add(4)  // below cursor: next sweep
			s.Add(11) // same word, above cursor: this sweep
			s.Add(90) // later word: this sweep
		}
		return false
	})
	if len(visited) != 3 || visited[0] != 10 || visited[1] != 11 || visited[2] != 90 {
		t.Fatalf("first sweep visited %v, want [10 11 90]", visited)
	}
	if !s.Contains(4) || s.Len() != 1 {
		t.Fatalf("deferred mark lost: contains(4)=%v len=%d", s.Contains(4), s.Len())
	}
	visited = nil
	s.Sweep(func(id int) bool {
		visited = append(visited, id)
		return false
	})
	if len(visited) != 1 || visited[0] != 4 {
		t.Fatalf("second sweep visited %v, want [4]", visited)
	}
}

// A member re-marked during its own visit is still retired when the visit
// returns false (the re-mark is an idempotent no-op on an active member),
// matching the pre-bitmask semantics the platform relies on.
func TestActiveSetSelfRemarkDuringVisit(t *testing.T) {
	s := NewActiveSet(64)
	s.Add(7)
	s.Sweep(func(id int) bool {
		s.Add(id)
		return false
	})
	if s.Contains(7) || s.Len() != 0 {
		t.Fatalf("self re-mark survived retirement: len=%d", s.Len())
	}
}
