package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from different seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		counts[v]++
	}
	// Roughly uniform: each bucket should hold ~2000 of 10000.
	for i, c := range counts {
		if c < 1500 || c > 2500 {
			t.Errorf("bucket %d has %d hits, expected ~2000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// Property: Perm always yields a permutation regardless of seed and size.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := NewRNG(seed).Perm(size)
		seen := make(map[int]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intn stays within bounds for arbitrary seeds and sizes.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		size := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(size)
			if v < 0 || v >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPickEmpty(t *testing.T) {
	if got := NewRNG(1).Pick(0); got != -1 {
		t.Errorf("Pick(0) = %d, want -1", got)
	}
	if got := NewRNG(1).Pick(1); got != 0 {
		t.Errorf("Pick(1) = %d, want 0", got)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Fork()
	// The child must not replay the parent's continuing stream.
	p := make([]uint64, 32)
	c := make([]uint64, 32)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("fork correlates with parent in %d/32 draws", same)
	}
}
