package sim

import (
	"strings"
	"testing"
)

func TestMsRoundTrip(t *testing.T) {
	cases := []struct {
		ms   float64
		want Tick
	}{
		{0, 0},
		{1, 10},
		{4, 40},
		{20, 200},
		{500, 5000},
		{1000, 10000},
		{0.05, 1}, // rounds to nearest tick
		{0.04, 0},
	}
	for _, c := range cases {
		if got := Ms(c.ms); got != c.want {
			t.Errorf("Ms(%v) = %d, want %d", c.ms, got, c.want)
		}
	}
}

func TestMsNegative(t *testing.T) {
	if got := Ms(-1); got != -10 {
		t.Errorf("Ms(-1) = %d, want -10", got)
	}
}

func TestTickMilliseconds(t *testing.T) {
	if got := Tick(25).Milliseconds(); got != 2.5 {
		t.Errorf("Tick(25).Milliseconds() = %v, want 2.5", got)
	}
}

func TestTickString(t *testing.T) {
	s := Tick(15).String()
	if !strings.Contains(s, "15") || !strings.Contains(s, "1.5ms") {
		t.Errorf("Tick(15).String() = %q, want ticks and ms", s)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %d, want 0", c.Now())
	}
	if got := c.Advance(5); got != 5 {
		t.Errorf("Advance(5) = %d, want 5", got)
	}
	if got := c.Step(); got != 6 {
		t.Errorf("Step() = %d, want 6", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("after Reset clock at %d, want 0", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}
