// Package sim provides the deterministic simulation substrate shared by all
// Centurion subsystems: a tick-based clock with millisecond scaling, a
// seedable random number generator, and an event priority queue.
//
// All higher-level packages (the NoC fabric, processing elements, the AIM
// intelligence engines and the experiment harness) express time exclusively
// in Ticks so that a single constant controls the time resolution of the
// whole platform.
package sim

import "fmt"

// Tick is the unit of simulated time. One tick corresponds to one router
// cycle of the simulated fabric.
type Tick int64

// TicksPerMs is the default time resolution: how many simulation ticks make
// up one simulated millisecond. The paper quotes all experiment parameters in
// milliseconds (4 ms generation period, 20 ms FFW timeout, 500 ms fault
// injection, 1000 ms runs); this constant maps them onto router cycles.
const TicksPerMs = 10

// Ms converts a duration in simulated milliseconds to Ticks using the
// default resolution, rounding to the nearest tick.
func Ms(ms float64) Tick {
	if ms < 0 {
		return Tick(ms*TicksPerMs - 0.5)
	}
	return Tick(ms*TicksPerMs + 0.5)
}

// Milliseconds reports the tick count as simulated milliseconds.
func (t Tick) Milliseconds() float64 { return float64(t) / TicksPerMs }

// String renders the tick with its millisecond equivalent, which makes
// traces and test failures readable.
func (t Tick) String() string {
	return fmt.Sprintf("%d(%.1fms)", int64(t), t.Milliseconds())
}

// Clock is a monotonically advancing simulation clock.
//
// The zero value is a clock at tick 0, ready to use.
type Clock struct {
	now Tick
}

// Now returns the current tick.
func (c *Clock) Now() Tick { return c.now }

// Advance moves the clock forward by d ticks and returns the new time.
// Advancing by a negative duration panics: simulated time never rewinds.
func (c *Clock) Advance(d Tick) Tick {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %d", d))
	}
	c.now += d
	return c.now
}

// Step advances the clock by exactly one tick and returns the new time.
func (c *Clock) Step() Tick { return c.Advance(1) }

// Reset rewinds the clock to tick zero. Only the experiment harness uses
// this, between independent runs.
func (c *Clock) Reset() { c.now = 0 }
