package sim

import (
	"math/bits"
	"sync/atomic"
)

// ActiveSet tracks which members of a fixed-size, densely indexed population
// (routers, processing elements, intelligence engines) need attention on the
// current tick. It is the substrate of the platform's activity-tracked
// stepping core: instead of touching all N components every tick, the
// simulator sweeps only the marked ones. Membership is a bitmask, so a sweep
// over a quiet mesh costs a handful of word loads.
//
// Determinism contract: Sweep visits members in ascending index order — the
// same order the dense full scan uses — and a member marked during the sweep
// is visited in the same sweep when its index is above the cursor and in the
// next sweep otherwise. That reproduces exactly what the dense scan does: a
// component stimulated by a lower-indexed component reacts this tick, one
// stimulated by a higher-indexed component reacts next tick.
//
// Marking is idempotent and spurious marks are harmless by design: the
// platform's components treat an extra visit as the no-op tick the dense
// scan would have executed anyway.
type ActiveSet struct {
	words []uint64
	// n is int64 (not int) so AddAtomic can maintain it with atomic.AddInt64
	// alongside the plain single-threaded mutators.
	n int64
}

// NewActiveSet returns a set over indices [0, size).
func NewActiveSet(size int) *ActiveSet {
	return &ActiveSet{words: make([]uint64, (size+63)/64)}
}

// Add marks a member active. Adding an already-active member is a no-op.
func (s *ActiveSet) Add(id int) {
	w, b := id>>6, uint64(1)<<uint(id&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.n++
	}
}

// AddAtomic is Add for concurrent marking: safe against other AddAtomic
// calls on any member (the parallel tick kernel's workers stir PEs and
// engines from different goroutines). It must not race with the plain
// mutators — the platform only uses it while the tick barrier guarantees no
// Sweep/Remove/Clear runs. The fast path is a single atomic load, so marking
// an already-active member (the common case for repeated stirs within one
// tick) costs no contended write.
func (s *ActiveSet) AddAtomic(id int) {
	w, b := id>>6, uint64(1)<<uint(id&63)
	if atomic.LoadUint64(&s.words[w])&b != 0 {
		return
	}
	if atomic.OrUint64(&s.words[w], b)&b == 0 {
		atomic.AddInt64(&s.n, 1)
	}
}

// Remove unmarks a member. Removing an inactive member is a no-op.
func (s *ActiveSet) Remove(id int) {
	w, b := id>>6, uint64(1)<<uint(id&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.n--
	}
}

// Contains reports whether the member is marked active.
func (s *ActiveSet) Contains(id int) bool {
	return s.words[id>>6]&(uint64(1)<<uint(id&63)) != 0
}

// Len returns the number of active members.
func (s *ActiveSet) Len() int { return int(s.n) }

// Clear deactivates every member.
func (s *ActiveSet) Clear() {
	clear(s.words)
	s.n = 0
}

// Empty reports whether no member is active.
func (s *ActiveSet) Empty() bool { return s.n == 0 }

// Sweep visits every active member in ascending index order. visit returns
// whether the member stays active; returning false retires it. Members
// marked during the sweep at indices above the cursor are visited in this
// sweep; marks at or below the cursor (including re-marks of a member the
// sweep just retired) survive into the next sweep.
func (s *ActiveSet) Sweep(visit func(id int) (keep bool)) {
	for w := range s.words {
		// pending is re-read from the live word after every visit so members
		// marked mid-sweep above the cursor are picked up; bits at or below
		// the cursor stay set in the word for the next sweep.
		pending := s.words[w]
		for pending != 0 {
			b := bits.TrailingZeros64(pending)
			if !visit(w<<6 + b) {
				s.Remove(w<<6 + b)
			}
			pending = s.words[w] &^ (uint64(1)<<uint(b+1) - 1)
		}
	}
}
