package sim

// Checkpoint support (DESIGN.md §15). The sim primitives expose just enough
// of their internals for a platform snapshot to capture and rewind them:
// raw RNG state, absolute clock position, and active-set membership. The
// event queue is deliberately NOT snapshottable — it holds closures — so
// restore paths rebuild pending events from higher-level records instead.

// State returns the generator's raw internal state. Together with SetState
// it allows a stream to be captured and replayed bit-identically.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds the generator to a state previously returned by State.
func (r *RNG) SetState(s uint64) { r.state = s }

// SetNow moves the clock to an absolute tick. Unlike Advance it may move
// time backwards; it exists only for checkpoint restore.
func (c *Clock) SetNow(t Tick) { c.now = t }

// ActiveSetState is a deep copy of an ActiveSet's membership, suitable for
// storing in a checkpoint and restoring into any same-sized set.
type ActiveSetState struct {
	Words []uint64
	N     int64
}

// SaveState copies the set's membership into st, reusing st's backing
// storage when it is large enough.
func (s *ActiveSet) SaveState(st *ActiveSetState) {
	st.Words = append(st.Words[:0], s.words...)
	st.N = s.n
}

// LoadState overwrites the set's membership from st. The target set must
// have been sized for the same population.
func (s *ActiveSet) LoadState(st *ActiveSetState) {
	if len(st.Words) != len(s.words) {
		panic("sim: ActiveSet restore size mismatch")
	}
	copy(s.words, st.Words)
	s.n = st.N
}
