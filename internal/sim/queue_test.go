package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var fired []Tick
	for _, at := range []Tick{30, 10, 20, 10, 5} {
		at := at
		q.Schedule(at, func(now Tick) { fired = append(fired, now) })
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	n := q.RunDue(100)
	if n != 5 {
		t.Fatalf("RunDue fired %d, want 5", n)
	}
	want := []Tick{5, 10, 10, 20, 30}
	for i, at := range want {
		if fired[i] != at {
			t.Errorf("fired[%d] = %d, want %d (order %v)", i, fired[i], at, fired)
		}
	}
}

func TestEventQueueFIFOWithinTick(t *testing.T) {
	var q EventQueue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(7, func(Tick) { order = append(order, i) })
	}
	q.RunDue(7)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events fired out of insertion order: %v", order)
		}
	}
}

func TestEventQueueRunDueStopsAtNow(t *testing.T) {
	var q EventQueue
	fired := 0
	q.Schedule(5, func(Tick) { fired++ })
	q.Schedule(6, func(Tick) { fired++ })
	q.Schedule(7, func(Tick) { fired++ })
	if n := q.RunDue(6); n != 2 {
		t.Fatalf("RunDue(6) fired %d, want 2", n)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if at, ok := q.PeekTick(); !ok || at != 7 {
		t.Fatalf("PeekTick = %d,%v, want 7,true", at, ok)
	}
}

func TestEventQueuePeekEmpty(t *testing.T) {
	var q EventQueue
	if _, ok := q.PeekTick(); ok {
		t.Fatal("PeekTick on empty queue reported an event")
	}
}

func TestEventQueueClear(t *testing.T) {
	var q EventQueue
	q.Schedule(1, func(Tick) {})
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d", q.Len())
	}
	if n := q.RunDue(10); n != 0 {
		t.Fatalf("RunDue after Clear fired %d", n)
	}
}

func TestEventQueueScheduleDuringRun(t *testing.T) {
	var q EventQueue
	var fired []Tick
	q.Schedule(1, func(now Tick) {
		fired = append(fired, now)
		q.Schedule(2, func(now Tick) { fired = append(fired, now) })
	})
	q.RunDue(5)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("nested scheduling produced %v, want [1 2]", fired)
	}
}

// Property: events always fire in non-decreasing tick order, matching a sort
// of the scheduled ticks that are due.
func TestEventQueueOrderProperty(t *testing.T) {
	f := func(ticks []uint16) bool {
		var q EventQueue
		var fired []Tick
		for _, raw := range ticks {
			at := Tick(raw % 1000)
			q.Schedule(at, func(now Tick) { fired = append(fired, now) })
		}
		q.RunDue(1000)
		if len(fired) != len(ticks) {
			return false
		}
		want := make([]Tick, 0, len(ticks))
		for _, raw := range ticks {
			want = append(want, Tick(raw%1000))
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
