package sim

// Event is a scheduled callback in an EventQueue. Events with smaller ticks
// fire first; events scheduled for the same tick fire in insertion order,
// which keeps the simulator deterministic.
type Event struct {
	At  Tick
	Fn  func(Tick)
	seq uint64
}

// EventQueue is a binary-heap priority queue of events ordered by (At, seq).
//
// The zero value is an empty queue ready to use. It is the timing substrate
// for processing-element timers (generation periods, join timeouts), the
// platform's parked-component wake-ups, and the experiment controller's
// scheduled actions (fault injection at 500 ms).
//
// Fired events are recycled through an internal free list, so steady-state
// scheduling (the active-set stepping core parks and wakes components
// constantly) does not allocate. A handle returned by Schedule is therefore
// only valid until the event fires.
type EventQueue struct {
	heap []*Event
	seq  uint64
	free []*Event
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

// Schedule enqueues fn to run at tick at and returns the event handle.
// The handle is owned by the queue again once the event fires — callers must
// not retain it past that point.
func (q *EventQueue) Schedule(at Tick, fn func(Tick)) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.At, e.Fn = at, fn
	} else {
		e = &Event{At: at, Fn: fn}
	}
	e.seq = q.seq
	q.seq++
	q.heap = append(q.heap, e)
	q.up(len(q.heap) - 1)
	return e
}

// PeekTick returns the tick of the earliest pending event.
// The second result is false when the queue is empty.
func (q *EventQueue) PeekTick() (Tick, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].At, true
}

// RunDue pops and runs every event scheduled at or before now, in order.
// It returns the number of events that fired. Fired events are recycled.
func (q *EventQueue) RunDue(now Tick) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].At <= now {
		e := q.pop()
		fn := e.Fn
		e.Fn = nil
		q.free = append(q.free, e)
		fn(e.At)
		n++
	}
	return n
}

// Clear drops all pending events without running them. The dropped events
// are recycled, so a cleared queue reschedules without allocating.
func (q *EventQueue) Clear() {
	for _, e := range q.heap {
		e.Fn = nil
		q.free = append(q.free, e)
	}
	q.heap = q.heap[:0]
}

func (q *EventQueue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

func (q *EventQueue) pop() *Event {
	e := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return e
}
