module centurion

go 1.24
