package centurion

import (
	"context"
	"fmt"
	"io"

	"centurion/internal/aim"
	platform "centurion/internal/centurion"
	"centurion/internal/experiments"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/picoblaze"
	"centurion/internal/server"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
)

// Model selects a runtime-management scheme.
type Model = experiments.Model

// The paper's runtime-management schemes.
const (
	// ModelNone is the no-intelligence reference: heuristic fixed mapping,
	// no adaptation.
	ModelNone = experiments.ModelNone
	// ModelNI is the Network Interaction scheme.
	ModelNI = experiments.ModelNI
	// ModelFFW is the Foraging for Work scheme.
	ModelFFW = experiments.ModelFFW
	// ModelRandomStatic is the adaptive models' random initial mapping with
	// adaptation disabled (an ablation).
	ModelRandomStatic = experiments.ModelRandomStatic
)

// Graph identifies a built-in application workload.
type Graph int

// Built-in workloads.
const (
	// GraphForkJoin is the paper's Figure 3 workload (1:3:1).
	GraphForkJoin Graph = iota
	// GraphPipeline is a 4-stage linear pipeline.
	GraphPipeline
	// GraphDiamond is a two-path fork/join diamond.
	GraphDiamond
)

// config collects the functional options.
type config struct {
	model       Model
	seed        uint64
	width       int
	height      int
	topology    string
	graph       *taskgraph.Graph
	neighborSig bool
	embeddedAIM bool
	niParams    *aim.NIParams
	ffwParams   *aim.FFWParams
	factory     aim.Factory
	thermal     *thermal.Params
	thermalDVFS bool
}

// Option configures a System.
type Option func(*config)

// WithModel selects the runtime-management scheme (default ModelNone).
func WithModel(m Model) Option { return func(c *config) { c.model = m } }

// WithSeed sets the run's random seed (default 1).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithSize sets the node-grid dimensions (default 16×8 — Centurion-V6's 128
// nodes).
func WithSize(w, h int) Option {
	return func(c *config) { c.width, c.height = w, h }
}

// WithTopology selects the fabric shape: "mesh" (default), "torus"
// (wrap-around links) or "cmesh" (concentrated mesh — 2×2 clusters of
// processing elements share one router; requires even dimensions).
// NewSystem panics on an unknown or invalid shape, exactly like an invalid
// custom graph.
func WithTopology(kind string) Option {
	return func(c *config) { c.topology = kind }
}

// WithGraph selects a built-in workload (default GraphForkJoin).
func WithGraph(g Graph) Option {
	return func(c *config) {
		switch g {
		case GraphPipeline:
			c.graph = taskgraph.Pipeline(4, 120, 24)
		case GraphDiamond:
			c.graph = taskgraph.Diamond(120, 24)
		default:
			c.graph = taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams())
		}
	}
}

// WithCustomGraph installs a caller-built task graph (validated).
func WithCustomGraph(g *taskgraph.Graph) Option {
	return func(c *config) { c.graph = g }
}

// WithNeighborSignals enables the information-transfer extension: AIMs
// announce task switches to their four mesh neighbours.
func WithNeighborSignals() Option {
	return func(c *config) { c.neighborSig = true }
}

// WithEmbeddedAIM hosts the Network Interaction pathway on the emulated
// PicoBlaze cores instead of the behavioural engine. Only meaningful with
// ModelNI.
func WithEmbeddedAIM() Option { return func(c *config) { c.embeddedAIM = true } }

// WithEngineFactory installs a custom intelligence-engine factory (one
// aim.Engine per node), overriding the model selection. Use it to experiment
// with new stimulus–threshold pathways on the same platform.
func WithEngineFactory(f aim.Factory) Option {
	return func(c *config) { c.factory = f }
}

// WithThermal enables the per-node temperature model (the AIM's temperature
// monitor). Pass thermal.DefaultParams() for the standard calibration.
func WithThermal(p thermal.Params) Option {
	return func(c *config) { c.thermal = &p }
}

// WithThermalDVFS additionally enables the frequency-scaling governor:
// nodes above the safe temperature run at half frequency until they cool.
// Implies WithThermal when no thermal parameters were set.
func WithThermalDVFS() Option {
	return func(c *config) {
		c.thermalDVFS = true
		if c.thermal == nil {
			p := thermal.DefaultParams()
			c.thermal = &p
		}
	}
}

// WithNIParams overrides the Network Interaction parameters.
func WithNIParams(p aim.NIParams) Option {
	return func(c *config) { c.niParams = &p }
}

// WithFFWParams overrides the Foraging for Work parameters.
func WithFFWParams(p aim.FFWParams) Option {
	return func(c *config) { c.ffwParams = &p }
}

// System is one assembled Centurion platform run.
type System struct {
	p   *platform.Platform
	ctl *platform.Controller
}

// NewSystem assembles a platform with the given options.
func NewSystem(opts ...Option) *System {
	c := config{model: ModelNone, seed: 1}
	for _, o := range opts {
		o(&c)
	}

	var factory aim.Factory
	switch c.model {
	case ModelNI:
		par := aim.DefaultNIParams()
		if c.niParams != nil {
			par = *c.niParams
		}
		if c.embeddedAIM {
			factory = picoblaze.NewNIEngineFactory(picoblaze.NIEngineParams{
				Threshold:      par.Threshold,
				InternalWeight: par.InternalWeight,
				PinSources:     par.PinSources,
			})
		} else {
			factory = aim.NewNIFactory(par)
		}
	case ModelFFW:
		par := aim.DefaultFFWParams()
		if c.ffwParams != nil {
			par = *c.ffwParams
		}
		factory = aim.NewFFWFactory(par)
	default:
		factory = aim.NewNone
	}
	if c.factory != nil {
		factory = c.factory
	}

	var mapper taskgraph.Mapper = taskgraph.RandomMapper{}
	if c.model == ModelNone {
		mapper = taskgraph.HeuristicMapper{}
	}

	cfg := platform.DefaultConfig(factory, mapper, c.seed)
	cfg.NeighborSignals = c.neighborSig
	cfg.Thermal = c.thermal
	cfg.ThermalDVFS = c.thermalDVFS
	cfg.Topology = c.topology
	if c.graph != nil {
		cfg.Graph = c.graph
	}
	if c.width > 0 {
		cfg.Width = c.width
	}
	if c.height > 0 {
		cfg.Height = c.height
	}
	p := platform.New(cfg)
	return &System{p: p, ctl: platform.NewController(p)}
}

// RunMs advances the simulation by the given number of simulated
// milliseconds.
func (s *System) RunMs(ms float64) {
	s.p.RunFor(sim.Ms(ms), nil)
}

// NowMs returns the current simulated time in milliseconds.
func (s *System) NowMs() float64 { return s.p.Now().Milliseconds() }

// Throughput returns the number of completed application instances.
func (s *System) Throughput() uint64 { return s.p.Counters().InstancesCompleted }

// Counters returns the platform's cumulative accounting.
func (s *System) Counters() platform.Counters { return s.p.Counters() }

// TaskCounts returns, indexed by task ID, how many alive nodes currently run
// each task (index 0 counts idle nodes).
func (s *System) TaskCounts() []int {
	return s.p.Dir.Counts(s.p.Graph.MaxTaskID())
}

// InjectRandomFaults kills n random nodes immediately (the experiment
// controller's debug interface).
func (s *System) InjectRandomFaults(n int, seed uint64) {
	nodes := faults.RandomNodes(s.p.Topo, n, sim.NewRNG(seed))
	s.p.InjectFaults(nodes)
}

// InjectRegionFault kills every node within the given topology distance of
// the epicentre at grid coordinate (x, y) — a localised thermal hot-spot
// shaped by the fabric's own metric (wrap-aware on a torus, cluster-granular
// on a concentrated mesh). An epicentre outside the grid is off-die and
// kills nothing.
func (s *System) InjectRegionFault(x, y, radius int) {
	c := noc.Coord{X: x, Y: y}
	if !s.p.Topo.InBounds(c) {
		return
	}
	s.p.InjectFaults(faults.Region(s.p.Topo, s.p.Topo.ID(c), radius))
}

// FaultProfile describes a hostile-environment schedule — death, churn,
// flaky links, cascading regional failures or byzantine routers. See
// internal/faults for field semantics; zero fields take per-kind defaults.
type FaultProfile = faults.Profile

// ApplyFaultProfile compiles the profile into a deterministic fault
// schedule for this system's topology and arranges every event on the
// simulation queue. durationMs bounds the timeline (events at or beyond it
// never fire). Equal (topology, seed, profile, duration) always yields a
// bit-identical schedule. Call it once, before running.
func (s *System) ApplyFaultProfile(p FaultProfile, seed uint64, durationMs int) error {
	sched, err := faults.Build(s.p.Topo, seed, p, durationMs)
	if err != nil {
		return fmt.Errorf("centurion: fault profile: %w", err)
	}
	s.ctl.ApplySchedule(sched)
	return nil
}

// AliveNodes returns the number of functioning nodes.
func (s *System) AliveNodes() int {
	n := 0
	for id := noc.NodeID(0); int(id) < s.p.Topo.Nodes(); id++ {
		if s.p.Net.Alive(id) {
			n++
		}
	}
	return n
}

// Controller exposes the experiment controller (RCAP configuration uploads,
// runtime data readout).
func (s *System) Controller() *platform.Controller { return s.ctl }

// Platform exposes the underlying platform for advanced use (package
// internal/centurion).
func (s *System) Platform() *platform.Platform { return s.p }

// Thermal returns the temperature model, or nil when not enabled.
func (s *System) Thermal() *thermal.Model { return s.p.Thermal() }

// MapASCII renders the current task mapping as a W×H character grid
// (sources '1'..'9', dead nodes 'x', idle '.').
func (s *System) MapASCII() string {
	topo := s.p.Topo
	out := make([]byte, 0, (topo.Width()+1)*topo.Height())
	for y := 0; y < topo.Height(); y++ {
		for x := 0; x < topo.Width(); x++ {
			id := topo.ID(noc.Coord{X: x, Y: y})
			switch {
			case !s.p.Net.Alive(id):
				out = append(out, 'x')
			case s.p.Dir.TaskOf(id) == taskgraph.None:
				out = append(out, '.')
			default:
				out = append(out, byte('0'+int(s.p.Dir.TaskOf(id))%10))
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}

// --- Experiment harness entry points ---

// Table1Result is the Table I reproduction output.
type Table1Result = experiments.Table1Result

// Table2Result is the Table II reproduction output.
type Table2Result = experiments.Table2Result

// Fig4Result is the Figure 4 reproduction output.
type Fig4Result = experiments.Fig4Result

// RunTable1 regenerates Table I with the given number of runs per model.
func RunTable1(runs int, seedBase uint64) Table1Result {
	return experiments.Table1(runs, seedBase)
}

// RunTable2 regenerates Table II with the paper's fault counts.
func RunTable2(runs int, seedBase uint64) Table2Result {
	return experiments.Table2(runs, seedBase, nil)
}

// RunFig4 regenerates one Figure 4 column (the paper uses 5 and 42 faults).
func RunFig4(faultCount int, seed uint64) Fig4Result {
	return experiments.Fig4(faultCount, seed)
}

// WriteFig4CSV runs a Figure 4 column and writes its series as CSV.
func WriteFig4CSV(w io.Writer, faultCount int, seed uint64) error {
	f := experiments.Fig4(faultCount, seed)
	defer f.Release()
	if err := f.WriteCSV(w); err != nil {
		return fmt.Errorf("centurion: writing figure 4 CSV: %w", err)
	}
	return nil
}

// --- Simulation-as-a-service entry points ---

// ServiceSpec is the service's JSON run specification: any model × graph ×
// mesh size × fault plan × thermal configuration, plus a batch size for
// mean ± CI aggregation. See internal/server.RunSpec for field semantics.
type ServiceSpec = server.RunSpec

// ServiceResult is a finished service run: per-run summaries, batch
// aggregates and (for single runs) the Figure-4-style time series.
type ServiceResult = server.RunResult

// ServeOptions sizes the simulation service (workers, queue, cache).
type ServeOptions = server.Options

// Service is the assembled simulation service: the job engine plus its
// REST API, usable as an http.Handler.
type Service = server.Server

// RunSpec canonicalizes, validates and executes one service spec
// synchronously, without standing up a server. Identical specs produce
// identical results.
func RunSpec(spec ServiceSpec) (*ServiceResult, error) {
	if err := spec.Canonicalize(); err != nil {
		return nil, fmt.Errorf("centurion: invalid run spec: %w", err)
	}
	res, err := server.Execute(context.Background(), spec, nil)
	if err != nil {
		return nil, fmt.Errorf("centurion: executing run spec: %w", err)
	}
	return res, nil
}

// NewServiceHandler assembles the simulation service as an http.Handler
// (POST /v1/runs, GET /v1/runs/{id}, SSE events, POST /v1/sweep, /healthz)
// for embedding in an existing server. Close the returned service to stop
// its worker pool.
func NewServiceHandler(opts ServeOptions) *Service {
	return server.New(opts)
}

// Serve runs the simulation service on addr until the listener fails
// (blocking). Zero options select the defaults: GOMAXPROCS workers, a
// 256-entry admission queue and a 128-entry LRU result cache.
func Serve(addr string, opts ServeOptions) error {
	return ServeContext(context.Background(), addr, opts)
}

// ServeContext is Serve with lifecycle control: cancelling ctx drains the
// service gracefully — the listener stops accepting, in-flight jobs finish
// (or their worker leases lapse), and the durable result store is closed
// cleanly.
func ServeContext(ctx context.Context, addr string, opts ServeOptions) error {
	return server.New(opts).ListenAndServeContext(ctx, addr)
}
