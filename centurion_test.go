package centurion

import (
	"reflect"
	"strings"
	"testing"

	"centurion/internal/aim"
	"centurion/internal/noc"
	"centurion/internal/taskgraph"
)

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem(WithModel(ModelFFW), WithSeed(1))
	sys.RunMs(300)
	if sys.Throughput() == 0 {
		t.Fatal("no throughput")
	}
	if got := sys.NowMs(); got != 300 {
		t.Errorf("NowMs = %v", got)
	}
	counts := sys.TaskCounts()
	total := 0
	for _, c := range counts[1:] {
		total += c
	}
	if total != 128 {
		t.Errorf("task counts %v do not cover 128 nodes", counts)
	}
	if sys.AliveNodes() != 128 {
		t.Errorf("AliveNodes = %d", sys.AliveNodes())
	}
}

func TestModelsDiffer(t *testing.T) {
	none := NewSystem(WithModel(ModelNone), WithSeed(2))
	ffw := NewSystem(WithModel(ModelFFW), WithSeed(2))
	none.RunMs(200)
	ffw.RunMs(200)
	if none.Counters().TaskSwitches != 0 {
		t.Error("baseline switched tasks")
	}
	if ffw.Counters().TaskSwitches == 0 {
		t.Error("FFW never switched from the random mapping")
	}
}

func TestFaultInjectionAPI(t *testing.T) {
	sys := NewSystem(WithModel(ModelNone), WithSeed(3))
	sys.RunMs(100)
	sys.InjectRandomFaults(16, 9)
	if got := sys.AliveNodes(); got != 112 {
		t.Errorf("AliveNodes after 16 faults = %d", got)
	}
	sys.InjectRegionFault(0, 0, 1) // corner epicentre, radius 1
	if got := sys.AliveNodes(); got > 112-1 {
		t.Errorf("region fault killed nothing (alive %d)", got)
	}
	pre := sys.Throughput()
	sys.RunMs(100)
	if sys.Throughput() == pre {
		t.Error("platform dead after partial faults")
	}
}

func TestCustomSizeAndGraph(t *testing.T) {
	sys := NewSystem(WithSize(6, 6), WithGraph(GraphPipeline), WithSeed(4))
	sys.RunMs(300)
	if sys.Throughput() == 0 {
		t.Error("pipeline on 6x6 completed nothing")
	}
	d := NewSystem(WithSize(8, 8), WithGraph(GraphDiamond), WithSeed(4), WithModel(ModelFFW))
	d.RunMs(300)
	if d.Throughput() == 0 {
		t.Error("diamond on 8x8 completed nothing")
	}
}

func TestCustomGraphOption(t *testing.T) {
	g := taskgraph.Pipeline(3, 100, 10)
	sys := NewSystem(WithCustomGraph(g), WithSeed(5))
	sys.RunMs(200)
	if sys.Throughput() == 0 {
		t.Error("custom graph completed nothing")
	}
}

func TestEmbeddedAIMOption(t *testing.T) {
	sys := NewSystem(WithModel(ModelNI), WithEmbeddedAIM(), WithSeed(6))
	sys.RunMs(300)
	if sys.Throughput() == 0 {
		t.Fatal("embedded-AIM platform completed nothing")
	}
	// The embedded and behavioural NI must produce identical dynamics: same
	// decisions, same counters (the equivalence is proven per-engine in
	// internal/picoblaze; this checks the full-platform wiring).
	ref := NewSystem(WithModel(ModelNI), WithSeed(6))
	ref.RunMs(300)
	if ref.Counters() != sys.Counters() {
		t.Errorf("embedded vs behavioural NI diverged:\n  pb: %+v\n  go: %+v",
			sys.Counters(), ref.Counters())
	}
}

func TestParamOptions(t *testing.T) {
	ni := aim.DefaultNIParams()
	ni.Threshold = 10
	sysA := NewSystem(WithModel(ModelNI), WithNIParams(ni), WithSeed(7))
	sysB := NewSystem(WithModel(ModelNI), WithSeed(7))
	sysA.RunMs(300)
	sysB.RunMs(300)
	if sysA.Counters().TaskSwitches == sysB.Counters().TaskSwitches {
		t.Log("warning: threshold override produced identical switch counts (possible but unlikely)")
	}

	ffw := aim.DefaultFFWParams()
	ffw.Timeout = 50
	sysC := NewSystem(WithModel(ModelFFW), WithFFWParams(ffw), WithSeed(7))
	sysC.RunMs(100)
}

func TestNeighborSignalsOption(t *testing.T) {
	ni := aim.DefaultNIParams()
	ni.NeighborWeight = 4
	sys := NewSystem(WithModel(ModelNI), WithNIParams(ni), WithNeighborSignals(), WithSeed(8))
	sys.RunMs(200)
	if sys.Throughput() == 0 {
		t.Error("information-transfer extension broke the platform")
	}
}

func TestMapASCII(t *testing.T) {
	sys := NewSystem(WithSeed(9))
	art := sys.MapASCII()
	lines := strings.Split(strings.TrimSpace(art), "\n")
	if len(lines) != 8 || len(lines[0]) != 16 {
		t.Fatalf("map is %dx%d, want 8 lines of 16", len(lines), len(lines[0]))
	}
	sys.InjectRegionFault(0, 0, 0) // radius 0: just the corner node
	if !strings.HasPrefix(sys.MapASCII(), "x") {
		t.Error("dead node not marked in map")
	}
}

func TestControllerAccess(t *testing.T) {
	sys := NewSystem(WithSeed(10))
	if err := sys.Controller().SendConfig(noc.NodeID(5), noc.OpNodeFrequency, 2, 0); err != nil {
		t.Fatal(err)
	}
	sys.RunMs(10)
	rep := sys.Controller().ReadNode(5)
	if !rep.Alive {
		t.Error("node 5 reported dead")
	}
	if sys.Platform() == nil {
		t.Error("Platform() returned nil")
	}
}

func TestWriteFig4CSVAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b strings.Builder
	if err := WriteFig4CSV(&b, 5, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "time_ms") {
		t.Error("CSV missing header")
	}
}

func TestRunSpecServiceEntry(t *testing.T) {
	spec := ServiceSpec{Model: "ffw", Seed: 3, DurationMs: 40, Width: 8, Height: 4}
	res, err := RunSpec(spec)
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	if len(res.Runs) != 1 || res.Series == nil {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	res2, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Runs[0], res2.Runs[0]) {
		t.Error("RunSpec is not deterministic for identical specs")
	}
	if _, err := RunSpec(ServiceSpec{Model: "zerg"}); err == nil {
		t.Error("RunSpec accepted an invalid spec")
	}
}
