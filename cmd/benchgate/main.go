// Command benchgate compares `go test -bench` output against the repo's
// BENCH_platform.json snapshot and fails when a benchmark regressed beyond a
// relative tolerance — the CI perf gate guarding the simulator's hot paths
// (not just their allocation counts).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkPlatformStep -benchmem . > bench.out
//	go run ./cmd/benchgate -bench bench.out -baseline BENCH_platform.json -tol 0.25
//
// Only benchmarks present in both inputs are gated: ns/op must stay within
// (1+tol)× the snapshot, allocs/op within the snapshot plus a small warm-up
// slack, and B/op within the snapshot plus a few bytes of amortised growth.
// Improvements are reported but never fail the gate (refresh the snapshot to
// bank them).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineEntry mirrors one "benchmarks" record of BENCH_platform.json.
type baselineEntry struct {
	NsPerOp     *float64 `json:"ns_per_op"`
	SPerOp      *float64 `json:"s_per_op"`
	BPerOp      *float64 `json:"b_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	// SpecsPerS is a throughput floor (sweep specs per second, reported by
	// the distributed-sweep benchmark via b.ReportMetric): unlike the ns/op
	// ceiling, the gate fails when the measurement falls BELOW the snapshot
	// by more than the tolerance.
	SpecsPerS *float64 `json:"specs_per_s"`
}

// baselineFile is the subset of BENCH_platform.json the gate reads.
type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	nsPerOp     float64
	bPerOp      float64
	allocsPerOp float64
	specsPerS   float64
	hasMem      bool
}

// benchLine matches `BenchmarkName[-P]  N  X ns/op [...]` output lines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts the ns/op, B/op and allocs/op figures from `go test
// -bench` output. Sub-benchmark names keep their slashes; the -GOMAXPROCS
// suffix is stripped so names match the snapshot's keys.
func parseBench(lines []string) map[string]measurement {
	out := make(map[string]measurement)
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		fields := strings.Fields(rest)
		var meas measurement
		seen := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				meas.nsPerOp = v
				seen = true
			case "B/op":
				meas.bPerOp = v
				meas.hasMem = true
			case "allocs/op":
				meas.allocsPerOp = v
				meas.hasMem = true
			case "specs/s":
				meas.specsPerS = v
			}
		}
		if seen {
			out[name] = meas
		}
	}
	return out
}

// gate compares measurements against the snapshot, returning human-readable
// failures. Benchmarks missing from either side are skipped; `require`
// names must all have been gated.
func gate(meas map[string]measurement, base map[string]baselineEntry, tol float64, require []string) (failures, notes []string) {
	gated := make(map[string]bool)
	for name, b := range base {
		got, ok := meas[name]
		if !ok {
			continue
		}
		want := 0.0
		switch {
		case b.NsPerOp != nil:
			want = *b.NsPerOp
		case b.SPerOp != nil:
			want = *b.SPerOp * 1e9
		}
		if want > 0 {
			gated[name] = true
			limit := want * (1 + tol)
			switch {
			case got.nsPerOp > limit:
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%% (limit %.0f)",
					name, got.nsPerOp, want, tol*100, limit))
			case got.nsPerOp < want/(1+tol):
				notes = append(notes, fmt.Sprintf(
					"%s: %.0f ns/op is >%.0f%% faster than baseline %.0f — consider refreshing BENCH_platform.json",
					name, got.nsPerOp, tol*100, want))
			}
		}
		if b.SpecsPerS != nil && got.specsPerS > 0 {
			gated[name] = true
			floor := *b.SpecsPerS / (1 + tol)
			switch {
			case got.specsPerS < floor:
				failures = append(failures, fmt.Sprintf(
					"%s: %.1f specs/s falls below baseline %.1f specs/s by more than %.0f%% (floor %.1f)",
					name, got.specsPerS, *b.SpecsPerS, tol*100, floor))
			case got.specsPerS > *b.SpecsPerS*(1+tol):
				notes = append(notes, fmt.Sprintf(
					"%s: %.1f specs/s is >%.0f%% faster than baseline %.1f — consider refreshing BENCH_platform.json",
					name, got.specsPerS, tol*100, *b.SpecsPerS))
			}
		}
		if got.hasMem && b.AllocsPerOp != nil {
			// Allow a couple of allocations of warm-up slack, exactly like
			// the historical awk guard.
			if allowed := *b.AllocsPerOp + 2; got.allocsPerOp > allowed {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f allocs/op exceeds baseline %.0f (+2 slack)",
					name, got.allocsPerOp, *b.AllocsPerOp))
			}
		}
		if got.hasMem && b.BPerOp != nil {
			if allowed := *b.BPerOp*(1+tol) + 16; got.bPerOp > allowed {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f B/op exceeds baseline %.0f (tolerance %.0f%% + 16 B slack)",
					name, got.bPerOp, *b.BPerOp, tol*100))
			}
		}
	}
	for _, name := range require {
		if !gated[name] {
			failures = append(failures, fmt.Sprintf(
				"%s: required benchmark missing from the measurements or the baseline", name))
		}
	}
	return failures, notes
}

func run() error {
	benchPath := flag.String("bench", "", "path to `go test -bench` output")
	basePath := flag.String("baseline", "BENCH_platform.json", "path to the benchmark snapshot")
	tol := flag.Float64("tol", 0.25, "relative ns/op tolerance before the gate fails")
	require := flag.String("require", "", "comma-separated benchmark names that must be gated")
	flag.Parse()
	if *benchPath == "" {
		return fmt.Errorf("-bench is required")
	}

	bf, err := os.Open(*benchPath)
	if err != nil {
		return err
	}
	defer bf.Close()
	var lines []string
	sc := bufio.NewScanner(bf)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return err
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *basePath, err)
	}

	var req []string
	if *require != "" {
		for _, r := range strings.Split(*require, ",") {
			if r = strings.TrimSpace(r); r != "" {
				req = append(req, r)
			}
		}
	}

	failures, notes := gate(parseBench(lines), base.Benchmarks, *tol, req)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond the ±%.0f%% gate", len(failures), *tol*100)
	}
	fmt.Println("benchgate: all gated benchmarks within tolerance")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
