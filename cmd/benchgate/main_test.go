package main

import "testing"

func f(v float64) *float64 { return &v }

func TestParseBench(t *testing.T) {
	lines := []string{
		"goos: linux",
		"BenchmarkPlatformStep/ni-4         \t  568759\t      4113 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkRouterTickLoaded \t10064269\t       230.5 ns/op\t       0 B/op\t       0 allocs/op",
		"PASS",
	}
	got := parseBench(lines)
	ni, ok := got["BenchmarkPlatformStep/ni"]
	if !ok || ni.nsPerOp != 4113 || !ni.hasMem || ni.allocsPerOp != 0 {
		t.Fatalf("ni parsed as %+v (ok=%v)", ni, ok)
	}
	if rt := got["BenchmarkRouterTickLoaded"]; rt.nsPerOp != 230.5 {
		t.Fatalf("RouterTickLoaded parsed as %+v", rt)
	}
}

func TestGate(t *testing.T) {
	base := map[string]baselineEntry{
		"BenchmarkA": {NsPerOp: f(1000), BPerOp: f(0), AllocsPerOp: f(0)},
		"BenchmarkB": {NsPerOp: f(1000)},
		"BenchmarkC": {SPerOp: f(0.5)},
		"BenchmarkD": {NsPerOp: f(1000)},
	}
	meas := map[string]measurement{
		"BenchmarkA": {nsPerOp: 1200, bPerOp: 4, allocsPerOp: 1, hasMem: true}, // within 25% + slack
		"BenchmarkB": {nsPerOp: 1300},                                          // 30% over: fail
		"BenchmarkC": {nsPerOp: 0.5e9 * 1.1},                                   // s_per_op baseline, within
	}
	failures, _ := gate(meas, base, 0.25, []string{"BenchmarkA", "BenchmarkD"})
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want ns/op regression on B and missing required D", failures)
	}

	// Alloc regression beyond slack fails even when timing is fine.
	meas["BenchmarkA"] = measurement{nsPerOp: 1000, allocsPerOp: 5, hasMem: true}
	failures, _ = gate(meas, base, 0.25, nil)
	if len(failures) != 2 { // B's timing + A's allocs
		t.Fatalf("failures = %v, want alloc failure on A and timing failure on B", failures)
	}
}
