package main

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"0,2,4,8,16,32", []int{0, 2, 4, 8, 16, 32}, false},
		{" 1 , 2 ", []int{1, 2}, false},
		{"5", []int{5}, false},
		{"", nil, false},
		{",,", nil, false},
		{"-3", nil, true},
		{"1,-3", nil, true},
		{"abc", nil, true},
		{"1,two", nil, true},
		{"1.5", nil, true},
	}
	for _, tc := range cases {
		got, err := parseInts(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseInts(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseInts(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestModelOptions(t *testing.T) {
	for _, name := range []string{"none", "ni", "ffw", "ni-pb"} {
		opts, err := modelOptions(name)
		if err != nil {
			t.Errorf("modelOptions(%q): %v", name, err)
		}
		if len(opts) == 0 {
			t.Errorf("modelOptions(%q) returned no options", name)
		}
	}
	if _, err := modelOptions("swarm"); err == nil {
		t.Error("unknown model accepted")
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	w.Close()
	out := new(strings.Builder)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return out.String(), runErr
}

func TestRunSubcommandSmoke(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdRun([]string{"-model", "ffw", "-seed", "1", "-ms", "50"})
	})
	if err != nil {
		t.Fatalf("run subcommand: %v", err)
	}
	if !strings.Contains(out, "model=ffw topology=mesh seed=1") {
		t.Errorf("run output missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "task populations:") {
		t.Errorf("run output missing task populations:\n%s", out)
	}
}

func TestRunSubcommandTopologies(t *testing.T) {
	for _, topo := range []string{"torus", "cmesh"} {
		out, err := captureStdout(t, func() error {
			return cmdRun([]string{"-model", "ffw", "-topology", topo, "-seed", "1", "-ms", "50"})
		})
		if err != nil {
			t.Fatalf("run -topology %s: %v", topo, err)
		}
		if !strings.Contains(out, "topology="+topo) {
			t.Errorf("run -topology %s output missing summary line:\n%s", topo, out)
		}
		if !strings.Contains(out, "instances completed") {
			t.Errorf("run -topology %s produced no throughput summary:\n%s", topo, out)
		}
	}
}

func TestRunRejectsUnknownTopology(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return cmdRun([]string{"-topology", "hypercube"})
	}); err == nil {
		t.Error("unknown topology accepted by run subcommand")
	}
}

func TestRunSubcommandWithFaults(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdRun([]string{"-model", "none", "-seed", "2", "-ms", "60", "-faults", "2", "-fault-at", "30"})
	})
	if err != nil {
		t.Fatalf("run with faults: %v", err)
	}
	if !strings.Contains(out, "pre-fault") || !strings.Contains(out, "post-fault") {
		t.Errorf("fault run output missing rates:\n%s", out)
	}
}

func TestRunRejectsOutOfRangeFaultTime(t *testing.T) {
	for _, args := range [][]string{
		{"-ms", "100", "-faults", "2", "-fault-at", "0"},
		{"-ms", "100", "-faults", "2", "-fault-at", "100"},
		{"-ms", "100", "-faults", "2", "-fault-at", "150"},
		{"-ms", "100", "-faults", "2", "-fault-at", "-5"},
	} {
		if _, err := captureStdout(t, func() error { return cmdRun(args) }); err == nil {
			t.Errorf("cmdRun(%v) accepted an out-of-range fault time", args)
		}
	}
}

// TestRunCheckpointRestoreResumesTimeline drives the run subcommand's
// checkpoint flags end to end: a run checkpointed mid-way is undisturbed,
// and resuming from the file continues the exact timeline — the resumed
// segment's completions plus a straight run to the checkpoint equal a
// straight full-length run.
func TestRunCheckpointRestoreResumesTimeline(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "mid.ckpt")
	completed := func(out string) int {
		m := regexp.MustCompile(`(\d+) instances completed`).FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("no completion count in output:\n%s", out)
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	base := []string{"-model", "ffw", "-seed", "3", "-grid", "8x4"}
	run := func(extra ...string) string {
		t.Helper()
		out, err := captureStdout(t, func() error { return cmdRun(append(append([]string{}, base...), extra...)) })
		if err != nil {
			t.Fatalf("cmdRun(%v): %v\n%s", extra, err, out)
		}
		return out
	}

	outFull := run("-ms", "80")
	outHalf := run("-ms", "40")
	outCkpt := run("-ms", "80", "-checkpoint-at", "40", "-checkpoint-out", ck)
	if !strings.Contains(outCkpt, "checkpoint written to") {
		t.Fatalf("no checkpoint confirmation:\n%s", outCkpt)
	}
	if completed(outCkpt) != completed(outFull) {
		t.Fatalf("writing a checkpoint disturbed the run: %d vs %d", completed(outCkpt), completed(outFull))
	}

	outResumed := run("-ms", "40", "-restore", ck)
	if !strings.Contains(outResumed, "restored") {
		t.Fatalf("no restore confirmation:\n%s", outResumed)
	}
	if got, want := completed(outHalf)+completed(outResumed), completed(outFull); got != want {
		t.Fatalf("resumed timeline diverged: %d (to checkpoint) + %d (resumed) != %d (straight run)",
			completed(outHalf), completed(outResumed), want)
	}
}

func TestRunCheckpointFlagValidation(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "v.ckpt")
	if _, err := captureStdout(t, func() error {
		return cmdRun([]string{"-ms", "50", "-checkpoint-at", "20"})
	}); err == nil {
		t.Error("-checkpoint-at without -checkpoint-out accepted")
	}
	if _, err := captureStdout(t, func() error {
		return cmdRun([]string{"-ms", "50", "-checkpoint-at", "60", "-checkpoint-out", ck})
	}); err == nil {
		t.Error("-checkpoint-at beyond the run accepted")
	}
	if _, err := captureStdout(t, func() error {
		return cmdRun([]string{"-ms", "50", "-restore", ck, "-faults", "2", "-fault-at", "20"})
	}); err == nil {
		t.Error("-restore combined with a fault plan accepted")
	}
	if _, err := captureStdout(t, func() error {
		return cmdRun([]string{"-ms", "50", "-restore", filepath.Join(t.TempDir(), "absent.ckpt")})
	}); err == nil {
		t.Error("-restore of a missing file accepted")
	}

	// A checkpoint only fits the platform it was taken from.
	if _, err := captureStdout(t, func() error {
		return cmdRun([]string{"-model", "ffw", "-grid", "8x4", "-ms", "30", "-checkpoint-at", "10", "-checkpoint-out", ck})
	}); err != nil {
		t.Fatalf("writing validation checkpoint: %v", err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdRun([]string{"-model", "ffw", "-grid", "16x8", "-ms", "30", "-restore", ck})
	}); err == nil {
		t.Error("grid-mismatched restore accepted")
	}
}

func TestRunRejectsUnknownModel(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return cmdRun([]string{"-model", "swarm"})
	}); err == nil {
		t.Error("unknown model accepted by run subcommand")
	}
}
