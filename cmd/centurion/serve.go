package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"centurion"
	"centurion/internal/server"
)

// cmdServe runs the simulation service: a bounded worker pool executing
// JSON run specs behind a REST API with an LRU result cache.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size")
	queue := fs.Int("queue", server.DefaultQueueBound, "admission queue bound (excess submissions get 503)")
	cache := fs.Int("cache", server.DefaultCacheSize, "LRU result-cache capacity (canonical specs)")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof (live CPU/heap profiling of the service)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "centurion service listening on %s (%d workers, queue %d, cache %d)\n",
		*addr, *workers, *queue, *cache)
	fmt.Fprintf(os.Stderr, "  POST /v1/runs[?wait=1]    submit a run spec\n")
	fmt.Fprintf(os.Stderr, "  GET  /v1/runs/{id}        job status + result\n")
	fmt.Fprintf(os.Stderr, "  GET  /v1/runs/{id}/events SSE time-series stream\n")
	fmt.Fprintf(os.Stderr, "  POST /v1/sweep            model x fault-count grid, mean±CI\n")
	fmt.Fprintf(os.Stderr, "  GET  /healthz             liveness + engine stats\n")
	if *pprofOn {
		fmt.Fprintf(os.Stderr, "  GET  /debug/pprof/        live profiling (pprof enabled)\n")
	}
	return centurion.Serve(*addr, centurion.ServeOptions{
		Workers:     *workers,
		QueueBound:  *queue,
		CacheSize:   *cache,
		EnablePprof: *pprofOn,
	})
}
