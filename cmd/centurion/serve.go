package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"

	"centurion"
	"centurion/internal/dispatch"
	"centurion/internal/server"
	"centurion/internal/store"
)

// cmdServe runs the simulation service: a bounded worker pool executing
// JSON run specs behind a REST API with an LRU result cache — and the
// dispatch coordinator that `centurion worker` daemons lease sweep jobs
// from. With -store the coordinator keeps a durable content-addressed
// result log, so a restart serves previously computed results without
// re-execution. With -journal the coordinator appends every job-queue
// transition to a durable log and replays pending and in-flight jobs on
// restart, so a coordinator crash costs clients at most a retry, never a
// lost job. SIGINT/SIGTERM drains gracefully: admission stops, in-flight
// jobs finish, the store closes cleanly.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size (also bounds outstanding dispatched jobs)")
	queue := fs.Int("queue", server.DefaultQueueBound, "admission queue bound (excess submissions get 503 + Retry-After)")
	cache := fs.Int("cache", server.DefaultCacheSize, "LRU result-cache capacity (canonical specs)")
	storeDir := fs.String("store", "", "directory for the durable content-addressed result store (empty: in-memory only)")
	journalDir := fs.String("journal", "", "directory for the durable coordinator job journal (empty: queue dies with the process)")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof (live CPU/heap profiling of the service)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := centurion.ServeOptions{
		Workers:     *workers,
		QueueBound:  *queue,
		CacheSize:   *cache,
		EnablePprof: *pprofOn,
	}
	if *storeDir != "" {
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			return fmt.Errorf("creating store directory: %w", err)
		}
		st, err := store.OpenLog(filepath.Join(*storeDir, "results.log"))
		if err != nil {
			return err
		}
		stats := st.Stats()
		fmt.Fprintf(os.Stderr, "result store %s: %d entries, %d log bytes", *storeDir, stats.Entries, stats.LogBytes)
		if stats.TruncatedTail {
			fmt.Fprintf(os.Stderr, " (torn tail record discarded)")
		}
		fmt.Fprintln(os.Stderr)
		opts.Store = st
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			return fmt.Errorf("creating journal directory: %w", err)
		}
		jr, err := dispatch.OpenJournal(filepath.Join(*journalDir, "queue.jrnl"))
		if err != nil {
			return err
		}
		pending := jr.Pending()
		jstats := jr.Stats()
		fmt.Fprintf(os.Stderr, "job journal %s: %d records replayed, %d jobs to restore", *journalDir, jstats.Replayed, len(pending))
		if jstats.TruncatedTail {
			fmt.Fprintf(os.Stderr, " (torn tail record discarded)")
		}
		fmt.Fprintln(os.Stderr)
		opts.Dispatch.Journal = jr
	}

	fmt.Fprintf(os.Stderr, "centurion service listening on %s (%d workers, queue %d, cache %d)\n",
		*addr, *workers, *queue, *cache)
	fmt.Fprintf(os.Stderr, "  POST /v1/runs[?wait=1]    submit a run spec\n")
	fmt.Fprintf(os.Stderr, "  GET  /v1/runs/{id}        job status + result\n")
	fmt.Fprintf(os.Stderr, "  GET  /v1/runs/{id}/events SSE time-series stream\n")
	fmt.Fprintf(os.Stderr, "  POST /v1/sweep            model x fault-count grid, mean±CI\n")
	fmt.Fprintf(os.Stderr, "  POST /v1/workers/register worker-daemon registration (see `centurion worker`)\n")
	if *journalDir != "" {
		fmt.Fprintf(os.Stderr, "  job journal: %s (queue survives coordinator restarts)\n", *journalDir)
	}
	fmt.Fprintf(os.Stderr, "  GET  /healthz             liveness + engine/dispatch/store stats\n")
	if *pprofOn {
		fmt.Fprintf(os.Stderr, "  GET  /debug/pprof/        live profiling (pprof enabled)\n")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // a second signal falls through to default handling (abort)
		fmt.Fprintln(os.Stderr, "centurion service: draining (signal again to abort)")
	}()
	return centurion.ServeContext(ctx, *addr, opts)
}
