package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"centurion/internal/dispatch"
	"centurion/internal/server"
)

// cmdWorker runs a sweep-execution daemon: it registers with a coordinator
// (`centurion serve`), leases jobs over long-poll, executes them through
// the same simulation path the coordinator would use locally, heartbeats to
// keep its leases alive, streams progress back, and retries with backoff
// across coordinator restarts. Every -checkpoint-every milliseconds of
// simulated time it commits the in-flight run's state back to the
// coordinator, so if this process dies the next attempt resumes mid-run
// instead of starting over. Horizontal scale-out is just more of these,
// on as many machines as you like.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://localhost:8080", "coordinator base URL")
	name := fs.String("name", "", "worker name in the registry (default hostname)")
	slots := fs.Int("slots", runtime.GOMAXPROCS(0), "jobs leased and executed concurrently")
	ckptEvery := fs.Int("checkpoint-every", 100, "checkpoint cadence in simulated ms (0 disables mid-run resume)")
	quiet := fs.Bool("quiet", false, "suppress per-job log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = host
	}

	// First SIGINT/SIGTERM drains: stop leasing, finish in-flight jobs.
	// A second signal aborts outright — leases lapse and the coordinator
	// requeues the abandoned work.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hardStop := make(chan struct{})
	go func() {
		<-ctx.Done()
		stop() // restore default handling so a third signal kills the process
		fmt.Fprintln(os.Stderr, "centurion worker: draining (finishing in-flight jobs; signal again to abort)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		close(hardStop)
	}()

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "centurion worker: "+format+"\n", a...)
	}
	if *quiet {
		logf = nil
	} else {
		logf("leasing from %s as %q with %d slots", *coordinator, *name, *slots)
	}
	wo := dispatch.WorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Slots:       *slots,
		Logf:        logf,
		HardStop:    hardStop,
	}
	if *ckptEvery > 0 {
		wo.ExecuteResumable = server.DispatchExecuteResumable(*ckptEvery)
	} else {
		wo.Execute = server.DispatchExecute
	}
	return dispatch.RunWorker(ctx, wo)
}
