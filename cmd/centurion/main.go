// Command centurion regenerates the paper's evaluation (Tables I and II,
// Figure 4), runs single interactive experiments, and assembles AIM programs
// for the embedded PicoBlaze substrate.
//
// Usage:
//
//	centurion table1 [-runs N] [-seed S]
//	centurion table2 [-runs N] [-seed S] [-faults 0,2,4,8,16,32]
//	centurion fig4   [-faults 5] [-seed S] [-csv out.csv]
//	centurion run    [-model none|ni|ffw|ni-pb] [-topology mesh|torus|cmesh]
//	                 [-grid WxH] [-seed S] [-ms 1000] [-faults N] [-fault-at MS]
//	                 [-fault-profile KIND|JSON] [-map] [-cpuprofile out.pprof]
//	                 [-checkpoint-at MS -checkpoint-out FILE] [-restore FILE]
//	centurion serve  [-addr :8080] [-workers N] [-queue N] [-cache N] [-store DIR]
//	                 [-journal DIR]
//	centurion worker [-coordinator URL] [-name NAME] [-slots N]
//	                 [-checkpoint-every MS]
//	centurion asm    [-o out.txt] file.psm
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"centurion"
	platform "centurion/internal/centurion"
	"centurion/internal/experiments"
	"centurion/internal/noc"
	"centurion/internal/picoblaze"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "table1":
		err = cmdTable1(os.Args[2:])
	case "table2":
		err = cmdTable2(os.Args[2:])
	case "fig4":
		err = cmdFig4(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "asm":
		err = cmdAsm(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "centurion:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `centurion — social-insect runtime management on a simulated many-core

subcommands:
  table1   settling time + relative performance, no faults   (paper Table I)
  table2   recovery time + relative performance after faults (paper Table II)
  fig4     time series for one fault scenario                (paper Figure 4)
  run      one interactive run with a chosen model
  serve    run the simulation service (REST API + job engine + dispatch coordinator)
  worker   run a sweep-execution daemon leasing jobs from a coordinator
  asm      assemble a PicoBlaze AIM program
`)
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	runs := fs.Int("runs", 100, "independent runs per model")
	seed := fs.Uint64("seed", 1, "base seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	t1 := centurion.RunTable1(*runs, *seed)
	fmt.Print(t1.Render())
	fmt.Printf("\n(%d runs/model in %s)\n", *runs, time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	runs := fs.Int("runs", 100, "independent runs per cell")
	seed := fs.Uint64("seed", 1, "base seed")
	faultsCSV := fs.String("faults", "0,2,4,8,16,32", "comma-separated fault counts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	counts, err := parseInts(*faultsCSV)
	if err != nil {
		return err
	}
	start := time.Now()
	t2 := experiments.Table2(*runs, *seed, counts)
	fmt.Print(t2.Render())
	fmt.Printf("\n(%d runs/cell in %s)\n", *runs, time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	faultN := fs.Int("faults", 5, "fault count injected at 500 ms (paper: 5 and 42)")
	seed := fs.Uint64("seed", 1, "seed")
	csvPath := fs.String("csv", "", "also write the series to this CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f := centurion.RunFig4(*faultN, *seed)
	defer f.Release()
	fmt.Print(f.RenderASCII())
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := f.WriteCSV(out); err != nil {
			return err
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	model := fs.String("model", "ffw", "none | ni | ffw | ni-pb (embedded PicoBlaze NI)")
	topology := fs.String("topology", "mesh", "fabric shape: mesh | torus | cmesh")
	grid := fs.String("grid", "", `node-grid dimensions as WxH, e.g. "64x64" (default 16x8)`)
	seed := fs.Uint64("seed", 1, "seed")
	ms := fs.Float64("ms", 1000, "simulated milliseconds")
	faultN := fs.Int("faults", 0, "random node faults to inject")
	faultAt := fs.Float64("fault-at", 500, "fault injection time (ms)")
	faultProf := fs.String("fault-profile", "",
		`hostile fault profile: a kind (death|churn|flaky|cascade|byzantine) or a JSON object, e.g. '{"kind":"cascade","waves":4}'`)
	showMap := fs.Bool("map", false, "print the task map before and after")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	ckptAt := fs.Float64("checkpoint-at", 0, "write a checkpoint at this time (ms from the start of this run; requires -checkpoint-out)")
	ckptOut := fs.String("checkpoint-out", "", "file to write the -checkpoint-at snapshot to (the run then continues)")
	restorePath := fs.String("restore", "", "resume from a checkpoint file; the platform flags must match the checkpointed run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	modelOpts, err := modelOptions(*model)
	if err != nil {
		return err
	}
	width, height := 16, 8
	if *grid != "" {
		if width, height, err = parseGrid(*grid); err != nil {
			return err
		}
	}
	// The noc layer owns the topology rules (valid kinds, cmesh evenness,
	// the node-count ceiling); validating against the requested grid here
	// turns a construction panic into a flag error.
	if _, err := noc.MakeTopology(*topology, width, height); err != nil {
		return err
	}
	if *faultProf != "" && *faultN > 0 {
		return fmt.Errorf("-fault-profile and -faults are mutually exclusive (a death profile subsumes the legacy pair)")
	}
	if *faultN > 0 && (*faultAt <= 0 || *faultAt >= *ms) {
		return fmt.Errorf("-fault-at %g must lie strictly inside (0, %g) to inject %d faults", *faultAt, *ms, *faultN)
	}
	if *ckptOut == "" && *ckptAt != 0 {
		return fmt.Errorf("-checkpoint-at requires -checkpoint-out")
	}
	if *ckptOut != "" && (*ckptAt < 0 || *ckptAt > *ms) {
		return fmt.Errorf("-checkpoint-at %g must lie within [0, %g]", *ckptAt, *ms)
	}
	if *restorePath != "" && (*faultProf != "" || *faultN > 0) {
		return fmt.Errorf("-restore resumes a finished timeline; fault plans are timed from a cold start (checkpoint the faulty run instead)")
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	opts := append([]centurion.Option{
		centurion.WithSeed(*seed),
		centurion.WithTopology(*topology),
		centurion.WithSize(width, height),
	}, modelOpts...)
	sys := centurion.NewSystem(opts...)
	if *restorePath != "" {
		cp, err := platform.ReadCheckpointFile(*restorePath)
		if err != nil {
			return err
		}
		if err := restoreInto(sys, cp); err != nil {
			return fmt.Errorf("restoring %s: %v", *restorePath, err)
		}
		fmt.Printf("restored %s at t=%.0f ms; running %.0f ms more\n", *restorePath, sys.NowMs(), *ms)
	}
	rc := &runClock{sys: sys, base: sys.NowMs(), at: *ckptAt, out: *ckptOut}
	if *showMap {
		fmt.Println("initial task map:")
		fmt.Print(sys.MapASCII())
	}

	if *faultProf != "" {
		prof, err := parseFaultProfile(*faultProf)
		if err != nil {
			return err
		}
		if err := sys.ApplyFaultProfile(prof, *seed, int(*ms)); err != nil {
			return err
		}
		if err := rc.advance(*ms); err != nil {
			return err
		}
		c := sys.Counters()
		fmt.Printf("model=%s topology=%s seed=%d profile=%s: %d instances completed in %.0f ms (%.2f inst/ms), %d task switches\n",
			*model, *topology, *seed, prof.Kind, c.InstancesCompleted, *ms,
			float64(c.InstancesCompleted)/(*ms), c.TaskSwitches)
	} else if *faultN > 0 {
		if err := rc.advance(*faultAt); err != nil {
			return err
		}
		pre := sys.Counters()
		sys.InjectRandomFaults(*faultN, *seed^0xfa17)
		if err := rc.advance(*ms - *faultAt); err != nil {
			return err
		}
		post := sys.Counters()
		preRate := float64(pre.InstancesCompleted) / *faultAt
		postRate := float64(post.InstancesCompleted-pre.InstancesCompleted) / (*ms - *faultAt)
		fmt.Printf("model=%s topology=%s seed=%d: pre-fault %.2f inst/ms, post-fault (%d faults) %.2f inst/ms\n",
			*model, *topology, *seed, preRate, *faultN, postRate)
	} else {
		// Deltas, not totals: a restored run's counters already include the
		// checkpointed prefix, and this command reports only its own segment.
		c0 := sys.Counters()
		if err := rc.advance(*ms); err != nil {
			return err
		}
		c := sys.Counters()
		fmt.Printf("model=%s topology=%s seed=%d: %d instances completed in %.0f ms (%.2f inst/ms), %d task switches\n",
			*model, *topology, *seed, c.InstancesCompleted-c0.InstancesCompleted, *ms,
			float64(c.InstancesCompleted-c0.InstancesCompleted)/(*ms), c.TaskSwitches-c0.TaskSwitches)
	}
	if *showMap {
		fmt.Println("final task map:")
		fmt.Print(sys.MapASCII())
	}
	counts := sys.TaskCounts()
	fmt.Printf("task populations: %v (alive nodes: %d)\n", counts[1:], sys.AliveNodes())
	return nil
}

// runClock advances a system through the segments of one `centurion run`
// invocation and writes the requested checkpoint when simulated time first
// reaches -checkpoint-at (measured from this run's start, so it composes
// with -restore). Splitting the containing segment at the snapshot point
// leaves the run's own timeline untouched.
type runClock struct {
	sys  *centurion.System
	base float64 // simulated ms when this run started
	at   float64 // checkpoint offset from base
	out  string  // checkpoint file; empty disables
	done bool
}

func (rc *runClock) advance(ms float64) error {
	if rc.out != "" && !rc.done {
		into := rc.at - (rc.sys.NowMs() - rc.base)
		if into >= 0 && into <= ms {
			rc.sys.RunMs(into)
			ms -= into
			if err := platform.WriteCheckpointFile(rc.out, rc.sys.Platform().Snapshot()); err != nil {
				return err
			}
			rc.done = true
			fmt.Printf("checkpoint written to %s at t=%.0f ms\n", rc.out, rc.sys.NowMs())
		}
	}
	rc.sys.RunMs(ms)
	return nil
}

// restoreInto loads a checkpoint into the system, converting the platform's
// shape-mismatch panic into a flag-level error.
func restoreInto(sys *centurion.System, cp *platform.Checkpoint) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("checkpoint does not fit this platform (%v); pass the -model/-grid/-topology of the checkpointed run", r)
		}
	}()
	sys.Platform().Restore(cp)
	return nil
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	out := fs.String("o", "", "write disassembly listing to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var src string
	if fs.NArg() == 0 {
		// No file: assemble the built-in NI pathway as a demonstration.
		src = picoblaze.NIProgram
		fmt.Fprintln(os.Stderr, "no input file; assembling the built-in NI pathway")
	} else {
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	}
	prog, err := picoblaze.Assemble(src)
	if err != nil {
		return err
	}
	listing := picoblaze.Disassemble(prog)
	if *out == "" {
		fmt.Print(listing)
		return nil
	}
	return os.WriteFile(*out, []byte(listing), 0o644)
}

// parseFaultProfile accepts either a bare profile kind ("cascade") or a
// JSON object with the full fault_profile field set.
func parseFaultProfile(s string) (centurion.FaultProfile, error) {
	var p centurion.FaultProfile
	if strings.HasPrefix(strings.TrimSpace(s), "{") {
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&p); err != nil {
			return p, fmt.Errorf("bad -fault-profile JSON: %w", err)
		}
		return p, nil
	}
	p.Kind = strings.TrimSpace(s)
	return p, nil
}

// modelOptions maps a -model flag value to system options.
func modelOptions(model string) ([]centurion.Option, error) {
	switch model {
	case "none":
		return []centurion.Option{centurion.WithModel(centurion.ModelNone)}, nil
	case "ni":
		return []centurion.Option{centurion.WithModel(centurion.ModelNI)}, nil
	case "ni-pb":
		return []centurion.Option{centurion.WithModel(centurion.ModelNI), centurion.WithEmbeddedAIM()}, nil
	case "ffw":
		return []centurion.Option{centurion.WithModel(centurion.ModelFFW)}, nil
	}
	return nil, fmt.Errorf("unknown model %q", model)
}

// parseGrid parses a -grid value of the form "WxH" ("64x64").
func parseGrid(g string) (w, h int, err error) {
	ws, hs, ok := strings.Cut(g, "x")
	if ok {
		w, err = strconv.Atoi(ws)
		if err == nil {
			h, err = strconv.Atoi(hs)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-grid %q is not of the form WxH (e.g. 64x64)", g)
	}
	if w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("-grid %q has non-positive dimensions", g)
	}
	return w, h, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad fault count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
