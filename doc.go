// Package centurion is a from-scratch reproduction of "Embedded Social
// Insect-Inspired Intelligence Networks for System-level Runtime Management"
// (Rowlings, Tyrrell, Trefzer — DATE 2020).
//
// It provides a deterministic simulator of the paper's Centurion many-core
// platform — a 16×8 mesh of wormhole NoC routers, processing elements and
// embedded Artificial Intelligence Modules (AIMs) — together with the
// paper's three runtime-management schemes (no intelligence, Network
// Interaction, Foraging for Work), its fork–join workload, fault injection,
// and the experiment harness that regenerates Table I, Table II and
// Figure 4.
//
// # Quick start
//
//	sys := centurion.NewSystem(
//		centurion.WithModel(centurion.ModelFFW),
//		centurion.WithSeed(1),
//	)
//	sys.RunMs(1000)
//	fmt.Println(sys.Throughput(), "instances completed")
//
// # Reproducing the paper's evaluation
//
//	t1 := centurion.RunTable1(100, 1)
//	fmt.Print(t1.Render())
//
// # Simulation as a service
//
// Any experiment the simulator supports can also be submitted as a JSON
// run spec — directly via RunSpec, or over the REST API started with
// Serve (POST /v1/runs, SSE streaming, batch sweeps with mean ± CI
// aggregation, an LRU result cache keyed on the canonical spec):
//
//	res, err := centurion.RunSpec(centurion.ServiceSpec{Model: "ffw", Seed: 7})
//	// or: centurion serve -addr :8080 -workers 4
//
// The service scales horizontally with `centurion worker` daemons that
// lease sweep jobs from the coordinator. The fabric is chaos-hardened:
// `serve -journal DIR` keeps a durable job journal replayed on restart
// (a coordinator crash costs clients at most a retry, never a lost job),
// and workers checkpoint in-flight runs every `-checkpoint-every`
// simulated milliseconds so a killed worker's successor resumes mid-run
// bit-identically instead of starting over.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results versus the paper.
package centurion
